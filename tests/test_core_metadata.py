"""Tests for storage-format bit accounting."""

import pytest

from repro.core.metadata import FP16_FORMAT, INT8_G64, MANT4_G64, StorageFormat


class TestBitsPerElement:
    def test_mant4_g64(self):
        # 4 code bits + (16 scale + 8 coeff) / 64 = 4.375
        assert MANT4_G64.bits_per_element() == pytest.approx(4.375)

    def test_int8_g64(self):
        assert INT8_G64.bits_per_element() == pytest.approx(8.25)

    def test_fp16_no_metadata(self):
        assert FP16_FORMAT.bits_per_element() == 16.0


class TestTensorBits:
    def test_full_groups(self):
        f = StorageFormat("q4", 4, group_size=64, coeff_bits=8)
        assert f.tensor_bits(128) == 128 * 4 + 2 * 24

    def test_tail_padding_counted_per_row(self):
        f = StorageFormat("q4", 4, group_size=64, coeff_bits=8)
        # 2 rows x 100 elements: each row needs 2 groups.
        bits = f.tensor_bits(200, inner_dim=100)
        assert bits == 200 * 4 + 2 * 2 * 24

    def test_tensor_bytes(self):
        f = StorageFormat("q8", 8)
        assert f.tensor_bytes(1000) == 1000.0

    def test_groupless_format_ignores_metadata(self):
        f = StorageFormat("ch8", 8, group_size=0, scale_bits=16)
        assert f.bits_per_element() == 8.0
