"""Tests for the bit-level packing of MANT tensors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import INT_A, MantCodec
from repro.core.metadata import StorageFormat
from repro.core.packing import pack_mant, packed_nbytes, unpack_mant
from repro.core.selection import MseSearchSelector


def encode(rng, rows=8, cols=128, group=64):
    codec = MantCodec(group_size=group)
    sel = MseSearchSelector(group_size=group)
    w = rng.normal(size=(rows, cols))
    return codec, codec.encode(w, sel.select(w)), w


class TestRoundTrip:
    def test_bit_exact(self, rng):
        codec, enc, _ = encode(rng)
        back = unpack_mant(pack_mant(enc))
        assert np.array_equal(back.sign, enc.sign)
        assert np.array_equal(back.magnitude, enc.magnitude)
        assert np.array_equal(back.a_coeff, enc.a_coeff)
        assert np.allclose(back.scale, enc.scale)
        assert back.original_shape == enc.original_shape

    def test_decode_after_roundtrip(self, rng):
        codec, enc, _ = encode(rng)
        assert np.allclose(codec.decode(unpack_mant(pack_mant(enc))),
                           codec.decode(enc))

    def test_int_groups_survive(self, rng):
        codec = MantCodec(group_size=32)
        w = rng.normal(size=(2, 64))
        a = np.array([[INT_A, 17.0], [0.0, INT_A]])
        enc = codec.encode(w, a)
        back = unpack_mant(pack_mant(enc))
        assert np.array_equal(back.a_coeff, a)

    def test_padded_shape(self, rng):
        codec = MantCodec(group_size=64)
        w = rng.normal(size=(3, 100))
        enc = codec.encode(w, np.full((3, 2), 17.0))
        back = unpack_mant(pack_mant(enc))
        assert back.original_shape == (3, 100)
        assert np.allclose(codec.decode(back), codec.decode(enc))

    @given(st.integers(1, 5), st.integers(8, 100))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows, cols):
        rng = np.random.default_rng(rows * 131 + cols)
        codec = MantCodec(group_size=16)
        w = rng.normal(size=(rows, cols))
        n_groups = -(-cols // 16)
        a = rng.choice([0.0, 17.0, 60.0, INT_A], size=(rows, n_groups))
        enc = codec.encode(w, a)
        back = unpack_mant(pack_mant(enc))
        assert np.allclose(codec.decode(back), codec.decode(enc))


class TestSizeAccounting:
    def test_matches_analytic_model(self, rng):
        # The packed image must agree with the StorageFormat arithmetic
        # the hardware memory model uses (modulo the fixed header and
        # nibble padding).
        _, enc, w = encode(rng, rows=16, cols=256, group=64)
        fmt = StorageFormat("mant4-g64", element_bits=4, group_size=64,
                            coeff_bits=8)
        analytic = fmt.tensor_bytes(w.size, inner_dim=w.shape[1])
        from repro.core.packing import _HEADER

        assert packed_nbytes(enc) == pytest.approx(analytic + _HEADER.size, abs=2)

    def test_packed_nbytes_exact(self, rng):
        _, enc, _ = encode(rng)
        assert len(pack_mant(enc)) == packed_nbytes(enc)

    def test_compression_ratio(self, rng):
        _, enc, w = encode(rng, rows=32, cols=512)
        fp16_bytes = w.size * 2
        ratio = fp16_bytes / packed_nbytes(enc)
        assert ratio > 3.4  # ~16 bits -> ~4.375 bits


class TestValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_mant(b"NOPE" + bytes(40))

    def test_non4bit_rejected(self, rng):
        codec = MantCodec(bits=2, group_size=16)
        w = rng.normal(size=(2, 16))
        enc = codec.encode(w, np.full((2, 1), 17.0))
        with pytest.raises(ValueError):
            pack_mant(enc)
