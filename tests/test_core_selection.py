"""Tests for coefficient selection (Eq. 6 search, Eq. 7 variance map)."""

import numpy as np
import pytest

from repro.core.codec import INT_A, MantCodec
from repro.core.mant import MANT_WEIGHT_A_SET, MantGrid
from repro.core.selection import (
    GroupStats,
    MseSearchSelector,
    VarianceSelector,
    group_stats,
)


class TestGroupStats:
    def test_matches_numpy(self, rng):
        v = rng.normal(size=64)
        st = group_stats(v)
        assert st.variance == pytest.approx(float(np.var(v)))
        assert st.abs_max == pytest.approx(float(np.max(np.abs(v))))

    def test_normalized_variance(self, rng):
        v = rng.normal(size=64)
        st = group_stats(v)
        norm = v / np.max(np.abs(v))
        assert st.normalized_variance == pytest.approx(float(np.var(norm)))

    def test_streaming_equivalence(self, rng):
        # The RQU accumulates (n, Σx, Σx², max) incrementally.
        v = rng.normal(size=64)
        acc = GroupStats(n=0, total=0.0, total_sq=0.0, abs_max=0.0)
        for x in v:
            acc = GroupStats(
                n=acc.n + 1,
                total=acc.total + x,
                total_sq=acc.total_sq + x * x,
                abs_max=max(acc.abs_max, abs(x)),
            )
        assert acc.variance == pytest.approx(group_stats(v).variance)

    def test_zero_group(self):
        st = group_stats(np.zeros(8))
        assert st.normalized_variance == 0.0

    def test_variance_never_negative(self):
        # E[x²] − E[x]² cancels catastrophically on near-constant groups;
        # accumulators crafted so the raw difference is a tiny negative.
        st = GroupStats(n=3, total=0.30000000000000004, total_sq=0.03, abs_max=0.1)
        assert st.variance >= 0.0
        assert st.normalized_variance >= 0.0

    def test_constant_group_variance_clipped(self):
        for c in (0.1, 1e8, -3.7e-5):
            st = group_stats(np.full(64, c))
            assert st.variance >= 0.0
            assert st.normalized_variance >= 0.0


class TestMseSearchSelector:
    def test_uniform_data_prefers_int_like(self, rng):
        sel = MseSearchSelector(group_size=64)
        w = rng.uniform(-1, 1, size=(4, 64))
        a = sel.select(w)
        # Uniform data wants a uniform grid: INT or large a.
        assert np.all((a == INT_A) | (a >= 80))

    def test_peaked_data_prefers_small_a(self, rng):
        sel = MseSearchSelector(group_size=64)
        w = rng.laplace(scale=0.01, size=(4, 64))
        w[:, 0] = 1.0  # one large value forces wide dynamic range
        a = sel.select(w)
        assert np.all(a <= 20)

    def test_selection_minimises_error(self, rng):
        sel = MseSearchSelector(group_size=32)
        codec = MantCodec(group_size=32, fp16_scales=False)
        w = rng.normal(size=(6, 64))
        chosen = sel.select(w)
        err_best = np.mean((codec.qdq(w, chosen) - w) ** 2)
        for a in (0.0, 17.0, 60.0, 120.0, float(INT_A)):
            err = np.mean((codec.qdq(w, np.full_like(chosen, a)) - w) ** 2)
            assert err_best <= err + 1e-12

    def test_act_weighted_selection_changes_choice(self, rng):
        # Heavily weighting some input channels must be able to change
        # the per-group optimum (the point of Eq. 6 vs raw weight MSE).
        sel = MseSearchSelector(group_size=32)
        w = rng.normal(size=(8, 64))
        h = np.ones(64)
        h[:8] = 1e4
        a_plain = sel.select(w)
        a_weighted = sel.select(w, act_sq_mean=h)
        assert a_plain.shape == a_weighted.shape

    def test_act_stat_shape_validated(self, rng):
        sel = MseSearchSelector(group_size=32)
        with pytest.raises(ValueError):
            sel.select(rng.normal(size=(2, 64)), act_sq_mean=np.ones(32))


class TestVarianceSelector:
    def test_theoretical_thresholds_monotone(self):
        sel = VarianceSelector()
        assert np.all(np.diff(sel._thresholds) > 0)

    def test_low_variance_gets_small_a(self):
        sel = VarianceSelector()
        a_low = sel.select_from_variance(0.001)
        a_high = sel.select_from_variance(0.5)
        v_low = MantGrid(max(a_low, 0)).normalized_variance() if a_low != INT_A else 1.0
        v_high = MantGrid(max(a_high, 0)).normalized_variance() if a_high != INT_A else 1.0
        assert v_low <= v_high

    def test_fit_agrees_with_mse_majority(self, rng):
        # After calibration, the variance map should agree with the MSE
        # search on a clear majority of held-out Gaussian groups.
        sel = VarianceSelector(group_size=64)
        calib = rng.normal(size=(800, 64))
        sel.fit(calib)
        mse = MseSearchSelector(group_size=64)
        test = rng.normal(size=(200, 64))
        a_var = sel.select_batch(test)
        a_mse = mse.select(test.reshape(1, -1)).ravel()
        # Compare the implied grid variance rather than exact a matches.
        def gv(a):
            return 0.35 if a == INT_A else MantGrid(a).normalized_variance()

        diffs = [abs(gv(x) - gv(y)) for x, y in zip(a_var, a_mse)]
        assert np.mean(diffs) < 0.08

    def test_select_batch_shape(self, rng):
        sel = VarianceSelector(group_size=32)
        out = sel.select_batch(rng.normal(size=(5, 7, 32)))
        assert out.shape == (5, 7)

    def test_fit_requires_2d(self):
        with pytest.raises(ValueError):
            VarianceSelector().fit(np.zeros(10))

    def test_degenerate_calibration_keeps_defaults(self):
        sel = VarianceSelector(group_size=16)
        before = sel._thresholds.copy()
        sel.fit(np.ones((20, 16)))  # constant groups: degenerate
        assert sel._thresholds is not None
        assert len(sel._thresholds) >= 1 or np.array_equal(before, sel._thresholds)
