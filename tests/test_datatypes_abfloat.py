"""Tests for abfloat and the OliVe outlier-victim codec."""

import numpy as np
import pytest

from repro.datatypes.abfloat import AbfloatType, OutlierVictimCodec
from repro.datatypes.int_type import IntType


class TestAbfloat:
    def test_anchor_is_smallest_positive(self):
        ab = AbfloatType(lo=3.0)
        pos = ab.grid[ab.grid > 0]
        assert pos[0] == pytest.approx(3.0)

    def test_rejects_nonpositive_anchor(self):
        with pytest.raises(ValueError):
            AbfloatType(lo=0.0)

    def test_span_covers_binades(self):
        ab = AbfloatType(lo=1.0, exp_bits=5, man_bits=2)
        assert ab.grid_max > 1e6  # 2^31-ish binades above the anchor


class TestOutlierVictimCodec:
    def make(self):
        return OutlierVictimCodec(IntType(4), outlier_sigma=3.0)

    def test_no_outliers_matches_int(self, rng):
        x = np.clip(rng.normal(size=64), -2, 2)
        codec = self.make()
        out = codec.qdq(x)
        ref = IntType(4).qdq(x, float(np.max(np.abs(x))) / 7)
        assert np.allclose(out, ref)

    def test_outlier_preserved_victim_zeroed(self, rng):
        x = rng.normal(size=64) * 0.5
        x[10] = 50.0  # big outlier; victim is index 11
        codec = self.make()
        out = codec.qdq(x)
        assert out[11] == 0.0
        assert abs(out[10] - 50.0) / 50.0 < 0.2  # abfloat keeps outliers close

    def test_beats_plain_int_with_outliers(self, rng):
        x = rng.normal(size=256)
        x[::32] = 40.0  # sparse outliers stretch the INT scale
        codec = self.make()
        ovp_err = np.mean((codec.qdq(x) - x) ** 2)
        int_err = np.mean((IntType(4).qdq(x) - x) ** 2)
        assert ovp_err < int_err

    def test_pair_arbitration_keeps_larger(self):
        x = np.zeros(8)
        x[0], x[1] = 30.0, -40.0  # both outliers in one pair
        out = self.make().qdq(x)
        # The larger (|-40|) wins outlier treatment; its partner is the
        # victim/saturated side.
        assert abs(out[1] + 40.0) < abs(out[0] - 30.0) or out[0] == 0.0

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            self.make().qdq(np.zeros((2, 4)))

    def test_odd_length_last_element_never_outlier(self, rng):
        x = rng.normal(size=7)
        x[6] = 100.0
        out = self.make().qdq(x)
        assert np.all(np.isfinite(out))
