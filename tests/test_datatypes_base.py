"""Unit tests for the GridDataType machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes.base import GridDataType, absmax_scale, nearest_grid_index


def make_dtype():
    return GridDataType("toy", 3, np.array([-4.0, -1.0, 0.0, 0.5, 2.0, 8.0]))


class TestNearestGridIndex:
    def test_exact_points_map_to_themselves(self):
        grid = np.array([-2.0, 0.0, 1.0, 5.0])
        idx = nearest_grid_index(grid.copy(), grid)
        assert np.array_equal(idx, np.arange(4))

    def test_midpoint_ties_go_left(self):
        grid = np.array([0.0, 2.0])
        assert nearest_grid_index(np.array([1.0]), grid)[0] == 0

    def test_clipping_beyond_range(self):
        grid = np.array([-1.0, 1.0])
        idx = nearest_grid_index(np.array([-100.0, 100.0]), grid)
        assert list(idx) == [0, 1]

    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_nearest_is_optimal(self, values):
        grid = np.array([-7.0, -3.0, -0.5, 0.0, 1.0, 2.5, 9.0])
        v = np.asarray(values)
        idx = nearest_grid_index(v, grid)
        chosen = np.abs(grid[idx] - v)
        best = np.min(np.abs(grid[None, :] - v[:, None]), axis=1)
        assert np.allclose(chosen, best)


class TestAbsmaxScale:
    def test_scalar_scale(self):
        s = absmax_scale(np.array([1.0, -4.0, 2.0]), grid_max=8.0)
        assert s == pytest.approx(0.5)

    def test_axis_scale_shape(self):
        x = np.ones((3, 8))
        s = absmax_scale(x, grid_max=2.0, axis=-1)
        assert s.shape == (3, 1)

    def test_zero_input_gives_unit_scale(self):
        s = absmax_scale(np.zeros(5), grid_max=7.0)
        assert s == pytest.approx(1.0)


class TestGridDataType:
    def test_grid_sorted_and_unique(self):
        dt = GridDataType("d", 2, np.array([1.0, -1.0, 1.0, 0.0]))
        assert np.array_equal(dt.grid, np.array([-1.0, 0.0, 1.0]))

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            GridDataType("bad", 1, np.array([3.0]))

    def test_roundtrip_on_grid_points(self):
        dt = make_dtype()
        codes = dt.encode(dt.grid)
        assert np.allclose(dt.decode(codes), dt.grid)

    def test_qdq_idempotent(self, rng):
        dt = make_dtype()
        x = rng.normal(size=100)
        once = dt.qdq(x)
        twice = dt.qdq(once)
        assert np.allclose(once, twice)

    def test_qdq_error_bounded_by_half_gap(self, rng):
        dt = make_dtype()
        # Values inside the grid span: error <= half the largest gap.
        x = rng.uniform(dt.grid[0], dt.grid[-1], size=200)
        err = np.abs(dt.qdq(x, 1.0) - x)
        max_gap = np.max(np.diff(dt.grid))
        assert np.all(err <= max_gap / 2 + 1e-12)

    def test_mse_of_grid_points_is_zero(self):
        dt = make_dtype()
        assert dt.mse(dt.grid, scale=1.0) == pytest.approx(0.0)

    def test_normalized_grid_max_is_one(self):
        dt = make_dtype()
        assert np.max(np.abs(dt.normalized_grid())) == pytest.approx(1.0)

    def test_has_zero(self):
        assert make_dtype().has_zero
