"""Tests for FP4/FP8, NormalFloat and MXFP4."""

import numpy as np
import pytest

from repro.datatypes.floats import FloatType, cast_fp16, float_grid, fp4_e2m1
from repro.datatypes.mxfp import MXFP_GROUP_SIZE, e8m0_scale, mxfp4_qdq
from repro.datatypes.normalfloat import NormalFloatType, nf4


class TestFloatGrid:
    def test_fp4_e2m1_values(self):
        pos = fp4_e2m1.grid[fp4_e2m1.grid > 0]
        assert list(pos) == [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]

    def test_fp4_has_zero(self):
        assert fp4_e2m1.has_zero

    def test_subnormals_present(self):
        g = float_grid(2, 1)
        assert 0.5 in g  # subnormal of E2M1

    def test_fp8_e4m3_max(self):
        # Generic no-NaN minifloat: full top binade, (1 + 7/8) * 2^8.
        # (OCP E4M3 reserves two codes for NaN and tops out at 448.)
        dt = FloatType(4, 3)
        assert dt.grid_max == pytest.approx(480.0)

    def test_cast_fp16_roundtrip(self):
        x = np.array([1.0, 2.5, -0.125])
        assert np.allclose(cast_fp16(x), x)

    def test_cast_fp16_rounds(self):
        x = np.array([1.0 + 2**-13])
        assert cast_fp16(x)[0] == pytest.approx(1.0)


class TestNormalFloat:
    def test_nf4_level_count(self):
        assert nf4.num_levels == 16

    def test_nf4_contains_zero_and_endpoints(self):
        assert nf4.has_zero
        assert nf4.grid[0] == pytest.approx(-1.0)
        assert nf4.grid[-1] == pytest.approx(1.0)

    def test_nf4_asymmetric(self):
        # QLoRA's NF4 has 8 positive and 7 negative nonzero levels.
        assert np.sum(nf4.grid > 0) == 8
        assert np.sum(nf4.grid < 0) == 7

    def test_nf4_best_on_gaussian(self, rng):
        from repro.datatypes.int_type import int4

        x = rng.normal(size=8000)
        # Tensor-wise absmax scaling: NF4's quantile grid should beat
        # uniform INT4 on Gaussian data (QLoRA's design claim).
        assert nf4.mse(x) < int4.mse(x)

    def test_nf_bits_param(self):
        dt = NormalFloatType(3)
        assert dt.num_levels == 8


class TestMxfp:
    def test_scale_is_power_of_two(self):
        s = e8m0_scale(np.array([0.7, 3.0, 100.0]), grid_max=6.0)
        exps = np.log2(s)
        assert np.allclose(exps, np.round(exps))

    def test_no_overflow_after_scaling(self, rng):
        x = rng.normal(size=(4, MXFP_GROUP_SIZE)) * 10
        out = mxfp4_qdq(x)
        assert np.all(np.isfinite(out))

    def test_group_divisibility_enforced(self):
        with pytest.raises(ValueError):
            mxfp4_qdq(np.zeros((2, 33)))

    def test_mxfp_worse_than_fp16_scale_fp4(self, rng):
        # The E8M0 restriction should cost accuracy vs a free scale —
        # the effect Tbl. V attributes MXFP4's PPL gap to.
        from repro.core.groups import to_groups, from_groups

        x = rng.normal(size=(8, 64))
        mx = mxfp4_qdq(x, 32)
        view = to_groups(x, 32)
        amax = np.max(np.abs(view.groups), axis=-1, keepdims=True)
        free = from_groups(view, fp4_e2m1.qdq(view.groups, amax / fp4_e2m1.grid_max))
        assert np.mean((mx - x) ** 2) >= np.mean((free - x) ** 2)
