"""Tests for INT, PoT and flint data types."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes.flint import FlintType, flint4, flint_positive_grid
from repro.datatypes.int_type import IntType, int4, int8, round_to_int
from repro.datatypes.pot import PotType, pot4, pot4_with_zero


class TestIntType:
    def test_int4_range(self):
        assert int4.qmax == 7
        assert int4.grid[0] == -7 and int4.grid[-1] == 7
        assert int4.num_levels == 15

    def test_int8_range(self):
        assert int8.qmax == 127

    def test_round_clip_saturates(self):
        q = int4.round_clip(np.array([-100.0, 100.0, 3.4, 3.6]))
        assert list(q) == [-7, 7, 3, 4]

    def test_encode_matches_rounding(self, rng):
        x = rng.uniform(-7, 7, 50)
        codes = int4.encode(x)
        assert np.allclose(int4.decode(codes), np.rint(x))

    def test_round_to_int_eq1(self):
        q = round_to_int(np.array([1.0, 2.49, -3.5]), bits=4, scale=1.0)
        assert list(q) == [1, 2, -4]

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IntType(1)

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_grid_symmetric(self, bits):
        dt = IntType(bits)
        assert np.allclose(dt.grid, -dt.grid[::-1])


class TestPotType:
    def test_pot4_values(self):
        pos = pot4.grid[pot4.grid > 0]
        assert list(pos) == [1, 2, 4, 8, 16, 32, 64, 128]

    def test_pot4_has_no_zero(self):
        assert not pot4.has_zero

    def test_pot4_with_zero(self):
        assert pot4_with_zero.has_zero
        pos = pot4_with_zero.grid[pot4_with_zero.grid > 0]
        assert list(pos) == [1, 2, 4, 8, 16, 32, 64]

    def test_pot_better_for_peaked_data(self, rng):
        # Laplace-like data: PoT with zero should beat INT on MSE after
        # normalising, the premise of ANT's type selection.
        x = rng.laplace(scale=0.05, size=4000)
        x = np.clip(x, -1, 1)
        assert pot4_with_zero.mse(x) < IntType(4).mse(x)


class TestFlint:
    def test_flint4_grid(self):
        pos = flint4.grid[flint4.grid >= 0]
        assert list(pos) == [0, 1, 2, 3, 4, 6, 8, 12]

    def test_flint_positive_grid_extends(self):
        g = flint_positive_grid(10)
        assert list(g) == [0, 1, 2, 3, 4, 6, 8, 12, 16, 24]

    def test_flint_rejects_tiny(self):
        with pytest.raises(ValueError):
            flint_positive_grid(1)

    def test_flint_bits(self):
        assert FlintType(4).bits == 4
        # Sign-magnitude with zero: ±0 collapse, 15 distinct values.
        assert FlintType(4).num_levels == 15

    def test_flint_between_int_and_pot_density(self, rng):
        # Gaussian data: flint should be competitive with INT (it was
        # designed for Gaussians) and beat PoT-without-zero.
        x = rng.normal(size=4000)
        assert flint4.mse(x) < pot4.mse(x)
