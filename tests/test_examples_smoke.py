"""Smoke tests: the fast examples must run end to end.

The model-loading examples (``llm_quantization``, ``generation_with_
quantized_kv``) are exercised by the benches that share their code
paths; here we run the examples that complete in seconds.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "examples")


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "max |difference| = 0.00e+00" in out
    assert "MANT grids" in out


def test_datatype_explorer():
    out = run_example("datatype_explorer.py")
    assert "pot4" in out and "Reverse lookup" in out


def test_kv_cache_streaming():
    out = run_example("kv_cache_streaming.py")
    assert "two-phase window" in out
    # MANT's K error column must beat INT4's on the outlier channel data.
    assert "decode:" in out


def test_accelerator_comparison():
    out = run_example("accelerator_comparison.py")
    assert "geomeans" in out
    assert "BitFusion" in out
