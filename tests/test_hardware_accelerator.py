"""Tests for the accelerator model: roofline, energy, traffic."""

import numpy as np
import pytest

from repro.hardware.accelerator import Accelerator, OperandSpec
from repro.hardware.area import ACCELERATOR_AREAS, area_table
from repro.hardware.energy import DEFAULT_ENERGY, EnergyBreakdown
from repro.hardware.memory import MemorySystem, fmt_for_bits
from repro.hardware.systolic import GemmShape


def mant_accel():
    return Accelerator(name="MANT", area_key="MANT", uses_sac=True)


class TestEnergyModel:
    def test_mac_scales_with_bit_product(self):
        em = DEFAULT_ENERGY
        assert em.mac_pj(8, 4) == pytest.approx(em.mac_pj(8, 8) / 2)
        assert em.mac_pj(16, 16) == pytest.approx(4 * em.mac_pj(8, 8))

    def test_breakdown_addition(self):
        a = EnergyBreakdown(core=1, buffer=2, dram=3, static=4)
        b = a + a
        assert b.total == 20

    def test_static_scales_with_area(self):
        em = DEFAULT_ENERGY
        assert em.static_pj_per_cycle(2.0, 1.0) == pytest.approx(
            2 * em.static_pj_per_cycle(1.0, 1.0)
        )


class TestStorageFormats:
    def test_fp16_format(self):
        f = fmt_for_bits(16)
        assert f.bits_per_element() == 16

    def test_mant_format_bytes(self):
        f = fmt_for_bits(4, 64, coeff_bits=8)
        # 4096-element row: 4 bits each + 64 groups * 24 bits metadata.
        bits = f.tensor_bits(4096, inner_dim=4096)
        assert bits == 4096 * 4 + 64 * 24


class TestAreaTable:
    def test_paper_core_areas(self):
        # Tbl. IV core areas: MANT 0.302, OliVe 0.337, ANT 0.327,
        # Tender 0.317 mm^2.
        areas = {r["architecture"]: r["core_mm2"] for r in area_table()}
        assert areas["MANT"] == pytest.approx(0.302, abs=0.002)
        assert areas["OliVe"] == pytest.approx(0.337, abs=0.002)
        assert areas["ANT"] == pytest.approx(0.327, abs=0.002)
        assert areas["Tender"] == pytest.approx(0.317, abs=0.002)

    def test_equal_area_within_tolerance(self):
        totals = [m.total_mm2 for m in ACCELERATOR_AREAS.values()]
        assert max(totals) / min(totals) < 1.02


class TestRunGemm:
    def test_prefill_compute_bound(self):
        acc = mant_accel()
        res = acc.run_gemm(GemmShape(2048, 4096, 4096), OperandSpec(8, 4))
        compute = 2048 * 4096 * 4096 / acc.array.macs_per_cycle(8, 4)
        assert res.cycles == pytest.approx(compute, rel=0.05)

    def test_decode_memory_bound(self):
        acc = mant_accel()
        res = acc.run_gemm(GemmShape(1, 4096, 4096), OperandSpec(8, 4, w_coeff_bits=8))
        mem = acc.memory.dram_cycles(res.traffic.dram_bytes)
        assert res.cycles == pytest.approx(mem, rel=0.2)

    def test_kv_routing(self):
        acc = mant_accel()
        res = acc.run_gemm(GemmShape(1, 4096, 8192, kv=True), OperandSpec(8, 4))
        assert res.traffic.kv_bytes > 0
        assert res.traffic.weight_bytes == 0

    def test_weights_resident_skips_fetch(self):
        acc = mant_accel()
        a = acc.run_gemm(GemmShape(1, 4096, 4096), OperandSpec(8, 4))
        b = acc.run_gemm(GemmShape(1, 4096, 4096), OperandSpec(8, 4),
                         weights_resident=True)
        assert b.traffic.weight_bytes == 0
        assert b.cycles < a.cycles

    def test_energy_components_positive(self):
        res = mant_accel().run_gemm(GemmShape(128, 1024, 1024), OperandSpec(8, 4))
        e = res.energy
        assert e.core > 0 and e.buffer > 0 and e.dram > 0 and e.static > 0

    def test_narrow_weights_less_dram(self):
        acc = mant_accel()
        r4 = acc.run_gemm(GemmShape(1, 4096, 4096), OperandSpec(8, 4))
        r8 = acc.run_gemm(GemmShape(1, 4096, 4096), OperandSpec(8, 8))
        assert r4.traffic.weight_bytes < r8.traffic.weight_bytes

    def test_decoder_energy_adds_core(self):
        shape = GemmShape(128, 1024, 1024)
        with_dec = Accelerator(name="d", area_key="ANT", uses_decoder=True)
        without = Accelerator(name="n", area_key="ANT", uses_decoder=False)
        assert (
            with_dec.run_gemm(shape, OperandSpec(8, 4)).energy.core
            > without.run_gemm(shape, OperandSpec(8, 4)).energy.core
        )

    def test_result_addition(self):
        acc = mant_accel()
        r = acc.run_gemm(GemmShape(16, 256, 256), OperandSpec(8, 4))
        total = r + r
        assert total.cycles == 2 * r.cycles
        assert total.macs == 2 * r.macs


class TestMemorySystem:
    def test_bytes_per_cycle(self):
        mem = MemorySystem(dram_gb_per_s=256, freq_ghz=1.0)
        assert mem.bytes_per_cycle == 256

    def test_fits_on_chip(self):
        mem = MemorySystem()
        assert mem.fits_on_chip(1000)
        assert not mem.fits_on_chip(10**9)
