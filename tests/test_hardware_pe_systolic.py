"""Tests for the PE array, systolic timing and RQU models."""

import pytest

from repro.hardware.pe import PEArray
from repro.hardware.rqu import DIVIDER_CYCLES, RQUModel
from repro.hardware.systolic import GemmShape, systolic_gemm_cycles


class TestPEArray:
    def test_equal_bit_capacity(self):
        # MANT's 1024 8-bit PEs == baselines' 4096 4-bit PEs.
        assert 1024 * 8 * 8 == 4096 * 4 * 4 == PEArray("x").capacity_bitproducts

    def test_mixed_precision_throughput(self):
        arr = PEArray("x")
        assert arr.macs_per_cycle(8, 8) == 1024
        assert arr.macs_per_cycle(8, 4) == 2048
        assert arr.macs_per_cycle(8, 2) == 4096
        assert arr.macs_per_cycle(4, 4) == 4096
        assert arr.macs_per_cycle(16, 16) == 256

    def test_paper_array_dims(self):
        # Sec. VI-B: 32x32 for INT8xINT8, 64x32 for INT8xINT4,
        # 128x32 for INT8xINT2.
        arr = PEArray("mant")
        assert arr.dims(8, 8) == (32, 32)
        assert arr.dims(8, 4) == (64, 32)
        assert arr.dims(8, 2) == (128, 32)

    def test_min_bits_clamp(self):
        arr = PEArray("x", min_bits=2)
        assert arr.macs_per_cycle(8, 1) == arr.macs_per_cycle(8, 2)


class TestSystolicTiming:
    def shape(self, m=256, k=256, n=64):
        return GemmShape(m=m, k=k, n=n)

    def test_compute_cycles_scale_with_m(self):
        arr = PEArray("x")
        t1 = systolic_gemm_cycles(self.shape(m=128), arr, 8, 8)
        t2 = systolic_gemm_cycles(self.shape(m=256), arr, 8, 8)
        assert t2.compute_cycles == pytest.approx(2 * t1.compute_cycles)

    def test_narrower_weights_fewer_cycles(self):
        arr = PEArray("x")
        t8 = systolic_gemm_cycles(self.shape(), arr, 8, 8)
        t4 = systolic_gemm_cycles(self.shape(), arr, 8, 4)
        assert t4.compute_cycles < t8.compute_cycles

    def test_tile_counts(self):
        arr = PEArray("x")
        # K=256 with 64 rows -> 4 K-tiles; N=64 with 32 cols -> 2 N-tiles.
        t = systolic_gemm_cycles(GemmShape(100, 256, 64), arr, 8, 4)
        assert t.compute_cycles == 4 * 2 * 100

    def test_division_hidden_with_many_k_tiles(self):
        arr = PEArray("x")
        # K = 2048 at 64 rows -> 32 K-tiles >= 12: divider fully hidden.
        t = systolic_gemm_cycles(GemmShape(64, 2048, 32), arr, 8, 4,
                                 output_quantized=True)
        t_ref = systolic_gemm_cycles(GemmShape(64, 2048, 32), arr, 8, 4)
        assert t.quant_overhead_cycles - t_ref.quant_overhead_cycles < 200

    def test_division_exposed_with_few_k_tiles(self):
        arr = PEArray("x")
        t = systolic_gemm_cycles(GemmShape(64, 64, 32), arr, 8, 4,
                                 output_quantized=True)
        assert t.quant_overhead_cycles > 0

    def test_unfused_costs_more(self):
        arr = PEArray("x")
        fused = systolic_gemm_cycles(GemmShape(2048, 4096, 4096), arr, 8, 4,
                                     output_quantized=True, fused_quant=True)
        unfused = systolic_gemm_cycles(GemmShape(2048, 4096, 4096), arr, 8, 4,
                                       output_quantized=True, fused_quant=False)
        assert unfused.quant_overhead_cycles > fused.quant_overhead_cycles

    def test_macs_property(self):
        assert GemmShape(2, 3, 4).macs == 24


class TestRQU:
    def test_spatial_pipeline_prime(self):
        r = RQUModel()
        assert r.spatial_cycles(1, 32, 64) >= 32

    def test_temporal_is_free_per_iteration(self):
        assert RQUModel().temporal_cycles_per_iteration() == 0

    def test_finalize_window(self):
        r = RQUModel()
        assert r.finalize_window_cycles(128) == 4 + DIVIDER_CYCLES

    def test_division_overhead_monotone(self):
        r = RQUModel()
        assert r.division_overhead(0) == DIVIDER_CYCLES
        assert r.division_overhead(6) == 6
        assert r.division_overhead(12) == 0
        assert r.division_overhead(40) == 0
