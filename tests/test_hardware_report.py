"""Tests for the full-model simulation report."""

import pytest

from repro.hardware.configs import ACCELERATORS, get_policy
from repro.hardware.report import memory_footprint_bytes, model_report
from repro.hardware.workloads import MODEL_SHAPES


class TestFootprint:
    def test_llama7b_mant_weights_near_3_7gb(self):
        fp = memory_footprint_bytes(
            MODEL_SHAPES["llama-7b"], get_policy("MANT", "llama"), 2048
        )
        # ~6.5B linear params at 4.375 bits/elem ~= 3.5 GB.
        assert 3.0e9 < fp["weights"] < 4.2e9

    def test_kv_grows_linearly_with_context(self):
        shape = MODEL_SHAPES["llama-7b"]
        pol = get_policy("MANT", "llama")
        a = memory_footprint_bytes(shape, pol, 2048)["kv_cache"]
        b = memory_footprint_bytes(shape, pol, 4096)["kv_cache"]
        assert b == pytest.approx(2 * a, rel=0.01)

    def test_mant_kv_4x_smaller_than_fp16(self):
        shape = MODEL_SHAPES["llama-7b"]
        mant = memory_footprint_bytes(shape, get_policy("MANT", "llama"), 65536)
        olive = memory_footprint_bytes(shape, get_policy("OliVe", "llama"), 65536)
        ratio = olive["kv_cache"] / mant["kv_cache"]
        assert 3.3 < ratio < 4.0  # 16b vs 4.375b


class TestModelReport:
    def test_report_fields_consistent(self):
        rep = model_report(
            ACCELERATORS["MANT"], get_policy("MANT", "llama"),
            MODEL_SHAPES["llama-7b"], 8192,
        )
        assert rep.tokens_per_s == pytest.approx(1 / rep.token_latency_s)
        assert rep.linear_fraction + rep.attention_fraction == pytest.approx(1.0)
        assert rep.energy_per_token_mj > 0

    def test_mant_higher_throughput_than_baselines(self):
        shape = MODEL_SHAPES["llama-7b"]
        mant = model_report(ACCELERATORS["MANT"], get_policy("MANT", "llama"),
                            shape, 32768)
        for name in ("Tender", "OliVe", "ANT*", "BitFusion"):
            base = model_report(ACCELERATORS[name], get_policy(name, "llama"),
                                shape, 32768)
            assert mant.tokens_per_s > base.tokens_per_s, name

    def test_attention_dominates_long_context(self):
        rep = model_report(ACCELERATORS["OliVe"], get_policy("OliVe", "llama"),
                           MODEL_SHAPES["llama-7b"], 131072)
        assert rep.attention_fraction > 0.5
