"""Tests for the end-to-end simulator: the Fig. 12/13/14 engine."""

import numpy as np
import pytest

from repro.hardware.configs import (
    ACCELERATORS,
    GROUPWISE_ACCELERATORS,
    GROUPWISE_POLICIES,
    POLICIES,
    PrecisionPolicy,
    get_accelerator,
    get_policy,
)
from repro.hardware.simulator import (
    simulate_attention_layer,
    simulate_linear_layer,
    simulate_token,
    speedup_and_energy,
)
from repro.hardware.workloads import MODEL_SHAPES, LLMShape


class TestPolicies:
    def test_all_mixes_sum_to_one(self):
        for table in (POLICIES, GROUPWISE_POLICIES):
            for per_family in table.values():
                for pol in per_family.values():
                    assert sum(f for _, f in pol.mix()) == pytest.approx(1.0)

    def test_invalid_mix_rejected(self):
        pol = PrecisionPolicy("bad", ((4, 0.5), (8, 0.2)))
        with pytest.raises(ValueError):
            pol.mix()

    def test_act_follows_weights(self):
        pol = get_policy("Tender", "llama")
        assert pol.act_bits_for(4) == 4 and pol.act_bits_for(8) == 8

    def test_mant_policy_quantizes_kv(self):
        pol = get_policy("MANT", "llama")
        assert pol.kv_bits == 4 and pol.attn_act_bits == 8

    def test_baselines_keep_fp16_kv(self):
        for name in ("Tender", "OliVe", "ANT*", "BitFusion"):
            assert get_policy(name, "llama").kv_bits == 16


class TestModelShapes:
    def test_llama7b_params_near_7b(self):
        shape = MODEL_SHAPES["llama-7b"]
        total = shape.layer_weight_elements() * shape.n_layers
        assert 6e9 < total < 7.2e9

    def test_opt_ffn_is_two_matrices(self):
        assert len(MODEL_SHAPES["opt-6.7b"].linear_weights()) == 6
        assert len(MODEL_SHAPES["llama-7b"].linear_weights()) == 7


class TestLinearLayerComparison:
    def test_mant_fastest_and_most_efficient(self):
        shape = MODEL_SHAPES["llama-7b"]
        results = {
            n: simulate_linear_layer(a, get_policy(n, "llama"), shape, 2048)
            for n, a in ACCELERATORS.items()
        }
        for name, res in results.items():
            if name == "MANT":
                continue
            assert res.cycles > results["MANT"].cycles, name
            assert res.energy.total > results["MANT"].energy.total, name

    def test_paper_fig12_ordering(self):
        # MANT < Tender < OliVe < ANT* < BitFusion in latency.
        shape = MODEL_SHAPES["llama-7b"]
        cyc = {
            n: simulate_linear_layer(a, get_policy(n, "llama"), shape, 2048).cycles
            for n, a in ACCELERATORS.items()
        }
        assert cyc["MANT"] < cyc["Tender"] < cyc["OliVe"] < cyc["ANT*"] < cyc["BitFusion"]

    def test_speedups_in_paper_band(self):
        # Geomean over the four models should land near the paper's
        # 1.83 / 1.96 / 2.00 / 4.93 (tolerance: same regime, not exact).
        speedups = {n: [] for n in ACCELERATORS}
        for model in ("llama-7b", "llama-65b", "opt-6.7b", "opt-13b"):
            shape = MODEL_SHAPES[model]
            res = {
                n: simulate_linear_layer(a, get_policy(n, shape.family), shape, 2048)
                for n, a in ACCELERATORS.items()
            }
            for n in ACCELERATORS:
                speedups[n].append(res[n].cycles / res["MANT"].cycles)
        geo = {n: float(np.exp(np.mean(np.log(v)))) for n, v in speedups.items()}
        assert 1.4 < geo["Tender"] < 2.2
        assert 1.6 < geo["OliVe"] < 2.4
        assert 1.7 < geo["ANT*"] < 2.4
        assert 3.5 < geo["BitFusion"] < 6.5


class TestSequenceSweep:
    def test_attention_grows_with_context(self):
        accel = get_accelerator("MANT")
        pol = get_policy("MANT", "llama")
        shape = MODEL_SHAPES["llama-7b"]
        short = simulate_attention_layer(accel, pol, shape, 2048)
        long = simulate_attention_layer(accel, pol, shape, 131072)
        assert long.cycles > 10 * short.cycles

    def test_speedup_grows_with_context(self):
        # Fig. 13: MANT's advantage over KV-FP16 baselines grows with
        # sequence length (attention dominance).
        shape = MODEL_SHAPES["llama-7b"]
        ratios = []
        for s in (2048, 32768, 131072):
            mant = simulate_token(get_accelerator("MANT"), get_policy("MANT", "llama"), shape, s)
            olive = simulate_token(get_accelerator("OliVe"), get_policy("OliVe", "llama"), shape, s)
            ratios.append(olive["total"].cycles / mant["total"].cycles)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 2.5

    def test_linear_dominates_short_attention_long(self):
        shape = MODEL_SHAPES["llama-7b"]
        tok_short = simulate_token(get_accelerator("OliVe"), get_policy("OliVe", "llama"), shape, 2048)
        tok_long = simulate_token(get_accelerator("OliVe"), get_policy("OliVe", "llama"), shape, 131072)
        assert tok_short["linear"].cycles > tok_short["attention"].cycles
        assert tok_long["attention"].cycles > tok_long["linear"].cycles


class TestGroupwiseComparison:
    def test_fig14_ordering(self):
        shape = MODEL_SHAPES["llama-7b"]
        cyc = {
            n: simulate_linear_layer(
                a, GROUPWISE_POLICIES[n]["llama"], shape, 2048
            ).cycles
            for n, a in GROUPWISE_ACCELERATORS.items()
        }
        assert cyc["MANT"] < cyc["ANT-g64"]
        assert cyc["MANT"] < cyc["INT-g64"]

    def test_fig14_band(self):
        shape = MODEL_SHAPES["llama-7b"]
        res = {
            n: simulate_linear_layer(a, GROUPWISE_POLICIES[n]["llama"], shape, 2048)
            for n, a in GROUPWISE_ACCELERATORS.items()
        }
        ant_speedup = res["ANT-g64"].cycles / res["MANT"].cycles
        assert 1.3 < ant_speedup < 2.1  # paper: 1.70x


class TestSpeedupHelper:
    def test_normalisation(self):
        shape = MODEL_SHAPES["llama-7b"]
        results = {
            n: simulate_linear_layer(a, get_policy(n, "llama"), shape, 2048)
            for n, a in ACCELERATORS.items()
        }
        norm = speedup_and_energy(results, baseline="BitFusion")
        assert norm["BitFusion"]["speedup"] == pytest.approx(1.0)
        assert norm["MANT"]["speedup"] > 1.0
        # Breakdown fractions of the baseline sum to 1.
        b = norm["BitFusion"]
        assert b["core"] + b["buffer"] + b["dram"] + b["static"] == pytest.approx(1.0)
