"""Tests for LLM workload shape generation."""

import pytest

from repro.hardware.workloads import (
    MODEL_SHAPES,
    attention_gemms,
    decode_linear_gemms,
    linear_layer_gemms,
)


class TestShapes:
    def test_all_published_models_present(self):
        assert set(MODEL_SHAPES) == {
            "llama-7b", "llama-13b", "llama-30b", "llama-65b",
            "opt-6.7b", "opt-13b",
        }

    def test_head_dim_is_128(self):
        for shape in MODEL_SHAPES.values():
            assert shape.d_head == 128

    def test_param_counts_near_names(self):
        # Linear parameters should be within ~15% of the headline size
        # (embeddings and norms excluded).
        expected = {"llama-7b": 6.7e9, "llama-13b": 13e9, "llama-65b": 65e9,
                    "opt-6.7b": 6.7e9, "opt-13b": 13e9}
        for name, target in expected.items():
            shape = MODEL_SHAPES[name]
            total = shape.layer_weight_elements() * shape.n_layers
            assert abs(total - target) / target < 0.18, name


class TestGemmGeneration:
    def test_linear_prefill_m(self):
        gemms = linear_layer_gemms(MODEL_SHAPES["llama-7b"], 2048)
        assert all(g.m == 2048 for g in gemms)
        assert len(gemms) == 7  # q, k, v, o, gate, up, down

    def test_opt_has_6_linears(self):
        assert len(linear_layer_gemms(MODEL_SHAPES["opt-6.7b"], 128)) == 6

    def test_decode_linear_is_gemv(self):
        gemms = decode_linear_gemms(MODEL_SHAPES["llama-7b"])
        assert all(g.m == 1 for g in gemms)

    def test_attention_kv_flag(self):
        gemms = attention_gemms(MODEL_SHAPES["llama-7b"], 4096)
        assert len(gemms) == 2
        assert all(g.kv for g in gemms)

    def test_attention_macs_scale_with_context(self):
        a = sum(g.macs for g in attention_gemms(MODEL_SHAPES["llama-7b"], 2048))
        b = sum(g.macs for g in attention_gemms(MODEL_SHAPES["llama-7b"], 4096))
        assert b == pytest.approx(2 * a)

    def test_prefill_attention_m(self):
        gemms = attention_gemms(MODEL_SHAPES["llama-7b"], 512, decode=False)
        assert all(g.m == 512 for g in gemms)
