"""Integration tests: the full pipeline on a briefly-trained model.

These exercise calibration → PTQ → perplexity → generation and the
algorithm/hardware agreement (the fused kernel computing a real model
layer), using the session-cached ``unit-test`` zoo model.
"""

import numpy as np
import pytest

from repro.core.fused import (
    fused_group_gemm,
    quantize_activations_int8,
    reference_group_gemm,
)
from repro.model.calibrate import calibrate_model
from repro.model.perplexity import perplexity_from_rows
from repro.model.quantized import PTQConfig, build_ptq
from repro.model.tasks import RecallTask
from repro.quant.kvcache import FP16KVCache, MantKVCache
from repro.quant.mant_framework import MantQuantizer


@pytest.fixture(scope="module")
def calibrated(unit_model):
    model, corpus = unit_model
    calib = calibrate_model(model, corpus, n_batches=2, batch_size=2, seq_len=64)
    rows = corpus.eval_tokens(768, 64)
    return model, corpus, calib, rows


class TestCalibration:
    def test_act_stats_cover_linears(self, calibrated):
        model, _, calib, _ = calibrated
        assert set(calib.act_sq_means) == set(model.config.linear_names())

    def test_kv_selector_fitted(self, calibrated):
        _, _, calib, _ = calibrated
        assert calib.kv_selector is not None
        assert len(calib.kv_selector._thresholds) >= 1


class TestPTQPipeline:
    @pytest.mark.parametrize(
        "method,w,a",
        [("mant", 4, 8), ("int", 4, 8), ("ant", 4, 4), ("tender", 4, 4)],
    )
    def test_ptq_ppl_finite_and_bounded(self, calibrated, method, w, a):
        model, _, calib, rows = calibrated
        fp16 = perplexity_from_rows(model, rows)
        setup = build_ptq(model, PTQConfig(method=method, w_bits=w, a_bits=a), calib)
        ppl = setup.ppl(model, rows)
        assert np.isfinite(ppl)
        assert ppl < fp16 * 50  # quantized model is degraded, not broken

    def test_mant_w4a8_close_to_fp16(self, calibrated):
        model, _, calib, rows = calibrated
        fp16 = perplexity_from_rows(model, rows)
        setup = build_ptq(model, PTQConfig(method="mant", w_bits=4, a_bits=8), calib)
        assert setup.ppl(model, rows) < fp16 * 1.25

    def test_kv_quantized_row_runs(self, calibrated):
        model, _, calib, rows = calibrated
        cfg = PTQConfig(method="mant", w_bits=4, a_bits=8,
                        kv_method="mant", kv_bits=4, attn_act_bits=8)
        setup = build_ptq(model, cfg, calib)
        assert np.isfinite(setup.ppl(model, rows))

    def test_weights_only_quantizes_linears(self, calibrated):
        model, _, calib, _ = calibrated
        setup = build_ptq(model, PTQConfig(method="mant"), calib)
        assert np.array_equal(setup.weights["embed"], model.params["embed"])
        name = model.config.linear_names()[0]
        assert not np.array_equal(setup.weights[name], model.params[name])


class TestAlgorithmHardwareAgreement:
    def test_fused_kernel_on_real_layer(self, calibrated):
        # Quantize a real trained projection and verify Eq. 5 exactly.
        model, corpus, calib, _ = calibrated
        name = model.config.linear_names()[0]
        w = model.params[name]
        mq = MantQuantizer(group_size=32, fp16_scales=False)
        enc = mq.encode(w, calib.act_sq_means[name])
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, w.shape[1]))
        xq = quantize_activations_int8(x, 32, fp16_scales=False)
        np.testing.assert_allclose(
            fused_group_gemm(xq, enc), reference_group_gemm(xq, enc),
            rtol=1e-9, atol=1e-9,
        )


class TestGeneration:
    def test_recall_with_quantized_kv_runs(self, calibrated):
        model, _, calib, _ = calibrated
        task = RecallTask(vocab_size=model.config.vocab_size,
                          prompt_len=48, n_episodes=3, n_pairs=2)
        fp16 = task.evaluate(model, FP16KVCache)
        mant = task.evaluate(
            model,
            lambda: MantKVCache(selector=calib.kv_selector, group_size=32, window=32),
        )
        assert 0.0 <= fp16 <= 1.0 and 0.0 <= mant <= 1.0

    def test_decode_with_mant_cache_stays_finite(self, calibrated):
        model, _, calib, _ = calibrated
        caches = [
            MantKVCache(selector=calib.kv_selector, group_size=32, window=8)
            for _ in range(model.config.n_layers)
        ]
        prompt = np.arange(20) % model.config.vocab_size
        logits = model.prefill(prompt, caches)
        for pos in range(20, 40):
            tok = int(np.argmax(logits))
            logits = model.decode_step(tok, caches, pos)
            assert np.all(np.isfinite(logits))
