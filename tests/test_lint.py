"""repro.lint — the static invariant linter.

Per rule: a minimal bad fixture fires and its good twin stays silent.
Plus: suppression semantics (inline, comment-line, mandatory reason,
unused detection), baseline round-trip, reporters, the CLI, and the
tier-1 gate ``test_tree_is_clean`` — the shipped tree must produce
zero findings of any severity (empty baseline included).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import ERROR, RULES, WARN, lint_paths, lint_source
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    Finding,
    module_path,
)
from repro.lint.report import render_json, render_text

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(REPO_ROOT, "src")

SERVE = "repro/serve/engine.py"          # a serve-scoped virtual path
NON_SERVE = "repro/model/train.py"       # outside every scoped rule


def rules_fired(source: str, path: str, dedent: bool = True) -> list[str]:
    if dedent:
        source = textwrap.dedent(source)
    return [f.rule for f in lint_source(source, path)]


# ----------------------------------------------------------------------
# Rule registry basics
# ----------------------------------------------------------------------
EXPECTED_RULES = {
    "clock-discipline", "rng-discipline", "set-iteration-order",
    "finish-release-pairing", "window-alignment", "frozen-config",
    "export-consistency", "mutable-default", "bare-except",
}


def test_registry_has_all_rules():
    assert EXPECTED_RULES <= set(RULES)
    assert len(EXPECTED_RULES) >= 8
    for rule in RULES.values():
        assert rule.invariant, f"rule {rule.id} must document its contract"
        assert rule.severity in (ERROR, WARN)


def test_module_path_normalization():
    assert module_path("src/repro/serve/engine.py") == "repro/serve/engine.py"
    assert module_path("/a/b/src/repro/lint/core.py") == "repro/lint/core.py"
    assert module_path("repro/serve/config.py") == "repro/serve/config.py"
    assert module_path("scratch/standalone.py") == "scratch/standalone.py"


# ----------------------------------------------------------------------
# clock-discipline
# ----------------------------------------------------------------------
def test_clock_discipline_fires_on_wall_clock_call():
    src = """\
        import time

        def tick():
            return time.perf_counter()
    """
    assert "clock-discipline" in rules_fired(src, "repro/serve/observe.py")
    assert "clock-discipline" in rules_fired(
        "import time\nt = time.time()\n", "repro/serve/fleet.py")


def test_clock_discipline_allows_injectable_reference_and_other_packages():
    seam = """\
        import time

        def make_engine(clock=time.perf_counter):
            return clock()
    """
    assert "clock-discipline" not in rules_fired(seam, SERVE)
    # Same *call* outside repro.serve is out of scope.
    bad = "import time\n\ndef f():\n    return time.time()\n"
    assert "clock-discipline" not in rules_fired(bad, NON_SERVE)


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
def test_rng_discipline_fires_on_global_state_rng():
    assert "rng-discipline" in rules_fired(
        "import numpy as np\nx = np.random.rand(3)\n",
        "repro/serve/sampling.py")
    assert "rng-discipline" in rules_fired(
        "import random\nx = random.random()\n", NON_SERVE)
    assert "rng-discipline" in rules_fired(
        "import numpy as np\nnp.random.seed(0)\n", "repro/core/codec.py")
    assert "rng-discipline" in rules_fired(
        "from random import choice\n", NON_SERVE)


def test_rng_discipline_requires_seeded_default_rng():
    assert "rng-discipline" in rules_fired(
        "import numpy as np\nrng = np.random.default_rng()\n", NON_SERVE)


def test_rng_discipline_allows_seeded_streams():
    good = """\
        import numpy as np

        def f(seed):
            rng = np.random.default_rng(seed)
            return rng.random()
    """
    assert "rng-discipline" not in rules_fired(good, NON_SERVE)
    # A Generator method named like a module function is fine too.
    assert "rng-discipline" not in rules_fired(
        "def f(rng):\n    return rng.random()\n", NON_SERVE)


# ----------------------------------------------------------------------
# set-iteration-order
# ----------------------------------------------------------------------
def test_set_iteration_fires_in_scheduling_paths():
    src = """\
        def plan(xs):
            for x in set(xs):
                yield x
    """
    assert "set-iteration-order" in rules_fired(
        src, "repro/serve/scheduler.py")
    assert "set-iteration-order" in rules_fired(
        "ys = [x for x in {1, 2, 3}]\n", "repro/serve/fleet.py")


def test_set_iteration_silent_on_sorted_and_elsewhere():
    good = """\
        def plan(xs):
            for x in sorted(set(xs)):
                yield x
    """
    assert "set-iteration-order" not in rules_fired(
        good, "repro/serve/scheduler.py")
    bad = "def f(xs):\n    for x in set(xs):\n        pass\n"
    assert "set-iteration-order" not in rules_fired(bad, NON_SERVE)
    assert "set-iteration-order" not in rules_fired(
        bad, "repro/serve/slo.py")   # not an order-sensitive file


# ----------------------------------------------------------------------
# finish-release-pairing
# ----------------------------------------------------------------------
def test_finish_release_fires_without_release():
    src = """\
        FINISH_ERROR = "error"

        class Engine:
            def fail(self, seq, events):
                seq.finish_reason = FINISH_ERROR
    """
    assert "finish-release-pairing" in rules_fired(src, SERVE)
    # FINISH_* passed as a call argument counts as emission too.
    arg = """\
        FINISH_TIMEOUT = "timeout"

        class Engine:
            def expire(self, seq, events):
                events.append(self.event(seq, FINISH_TIMEOUT))
    """
    assert "finish-release-pairing" in rules_fired(arg, SERVE)


def test_finish_release_silent_when_paired_or_compared():
    paired = """\
        FINISH_ERROR = "error"

        class Engine:
            def fail(self, seq, events):
                seq.finish_reason = FINISH_ERROR
                self._release_storage(seq)

            def expire(self, seq):
                seq.finish_reason = FINISH_ERROR
                self._retire(seq)
    """
    assert "finish-release-pairing" not in rules_fired(paired, SERVE)
    compare_only = """\
        FINISH_ERROR = "error"

        class Engine:
            def is_failed(self, seq):
                return seq.finish_reason == FINISH_ERROR
    """
    assert "finish-release-pairing" not in rules_fired(compare_only, SERVE)
    # Out of scope outside engine.py / fleet.py.
    bad = """\
        FINISH_ERROR = "error"

        def fail(seq):
            seq.finish_reason = FINISH_ERROR
    """
    assert "finish-release-pairing" not in rules_fired(
        bad, "repro/serve/request.py")


# ----------------------------------------------------------------------
# window-alignment
# ----------------------------------------------------------------------
def test_window_alignment_fires_on_literal_knobs():
    fired = rules_fired("cfg = build(block_tokens=48)\n", SERVE)
    assert "window-alignment" in fired
    assert "window-alignment" in rules_fired(
        "cfg = build(prefill_chunk_tokens=24)\n", "repro/serve/loadgen.py")


def test_window_alignment_silent_in_config_and_for_threaded_values():
    assert "window-alignment" not in rules_fired(
        "cfg = build(block_tokens=32)\n", "repro/serve/config.py")
    assert "window-alignment" not in rules_fired(
        "cfg = build(block_tokens=config.block_tokens)\n", SERVE)


# ----------------------------------------------------------------------
# frozen-config
# ----------------------------------------------------------------------
def test_frozen_config_fires_on_unfrozen_or_unvalidated():
    src = """\
        from dataclasses import dataclass

        @dataclass
        class LooseConfig:
            x: int = 1
    """
    fired = rules_fired(src, "repro/serve/config.py")
    assert fired.count("frozen-config") == 2    # not frozen AND no validator


def test_frozen_config_silent_on_compliant_dataclass():
    src = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class GoodConfig:
            x: int = 1

            def __post_init__(self):
                if self.x < 1:
                    raise ValueError("x must be >= 1")
    """
    assert "frozen-config" not in rules_fired(src, "repro/serve/config.py")
    # Non-dataclasses and other files are out of scope.
    assert "frozen-config" not in rules_fired(
        "class C:\n    pass\n", "repro/serve/config.py")
    bad = "from dataclasses import dataclass\n\n@dataclass\nclass C:\n    x: int = 1\n"
    assert "frozen-config" not in rules_fired(bad, SERVE)


# ----------------------------------------------------------------------
# export-consistency
# ----------------------------------------------------------------------
def test_export_consistency_fires_on_phantom_and_missing():
    phantom = """\
        from repro.serve.engine import GenerationEngine

        __all__ = ["GenerationEngine", "NoSuchThing"]
    """
    assert "export-consistency" in rules_fired(
        phantom, "repro/serve/__init__.py")
    unlisted = """\
        from repro.serve.engine import GenerationEngine, EngineStats

        __all__ = ["GenerationEngine"]
    """
    assert "export-consistency" in rules_fired(
        unlisted, "repro/serve/__init__.py")
    dup = "A = 1\n__all__ = [\"A\", \"A\"]\n"
    assert "export-consistency" in rules_fired(dup, "repro/serve/__init__.py")


def test_export_consistency_silent_when_consistent():
    good = """\
        from repro.serve.engine import EngineStats, GenerationEngine
        from repro.lint import core as _core

        __all__ = ["EngineStats", "GenerationEngine", "helper"]

        def helper():
            return None
    """
    assert "export-consistency" not in rules_fired(
        good, "repro/serve/__init__.py")
    # Unlisted re-exports only matter in __init__.py.
    module = """\
        from repro.serve.engine import EngineStats, GenerationEngine

        __all__ = ["GenerationEngine"]
    """
    assert "export-consistency" not in rules_fired(module, SERVE)


# ----------------------------------------------------------------------
# generic safety rules
# ----------------------------------------------------------------------
def test_mutable_default_fires_and_none_twin_passes():
    assert "mutable-default" in rules_fired(
        "def f(x=[]):\n    return x\n", NON_SERVE)
    assert "mutable-default" in rules_fired(
        "def f(*, x=dict()):\n    return x\n", NON_SERVE)
    assert "mutable-default" not in rules_fired(
        "def f(x=None):\n    return x if x is not None else []\n", NON_SERVE)
    assert "mutable-default" not in rules_fired(
        "def f(x=()):\n    return x\n", NON_SERVE)


def test_bare_except_fires_and_narrow_twin_passes():
    bad = "try:\n    pass\nexcept:\n    pass\n"
    findings = lint_source(bad, NON_SERVE)
    assert any(f.rule == "bare-except" and f.severity == WARN
               for f in findings)
    good = "try:\n    pass\nexcept Exception:\n    pass\n"
    assert "bare-except" not in rules_fired(good, NON_SERVE)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_with_reason_silences_finding():
    src = ("import time\n"
           "t = time.time()  # lint: allow[clock-discipline] test seam\n")
    assert rules_fired(src, "repro/serve/observe.py", dedent=False) == []


def test_comment_line_suppression_applies_to_next_code_line():
    src = ("import time\n"
           "# lint: allow[clock-discipline] wall-clock seam, opt-in\n"
           "# (continuation of the comment block)\n"
           "t = time.time()\n")
    assert rules_fired(src, "repro/serve/observe.py", dedent=False) == []


def test_suppression_requires_reason():
    src = ("import time\n"
           "t = time.time()  # lint: allow[clock-discipline]\n")
    fired = rules_fired(src, "repro/serve/observe.py", dedent=False)
    assert BAD_SUPPRESSION in fired
    assert "clock-discipline" in fired   # malformed allow suppresses nothing


def test_unused_suppression_is_flagged():
    src = "x = 1  # lint: allow[bare-except] nothing here needs this\n"
    findings = lint_source(src, NON_SERVE)
    assert [f.rule for f in findings] == [UNUSED_SUPPRESSION]
    assert findings[0].severity == WARN


def test_unused_suppression_skipped_for_rule_subsets():
    src = "x = 1  # lint: allow[bare-except] subset runs cannot judge this\n"
    findings = lint_source(src, NON_SERVE, rules=[RULES["rng-discipline"]])
    assert findings == []


def test_suppression_only_silences_named_rule():
    src = ("import time\n"
           "t = time.time()  # lint: allow[bare-except] wrong rule id\n")
    fired = rules_fired(src, "repro/serve/observe.py", dedent=False)
    assert "clock-discipline" in fired
    assert UNUSED_SUPPRESSION in fired


def test_docstring_mention_of_allow_syntax_is_not_a_suppression():
    src = '"""Docs: suppress with `# lint: allow[rule-id] reason`."""\nx = 1\n'
    assert rules_fired(src, NON_SERVE, dedent=False) == []


def test_parse_error_is_reported_as_finding():
    findings = lint_source("def broken(:\n", NON_SERVE)
    assert [f.rule for f in findings] == [PARSE_ERROR]
    assert findings[0].severity == ERROR


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
BAD_CLOCK = "import time\n\ndef f():\n    return time.time()\n"


def test_baseline_round_trip(tmp_path):
    bad = tmp_path / "repro" / "serve" / "patch.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_CLOCK)

    findings = lint_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["clock-discipline"]

    baseline_file = tmp_path / "lint_baseline.json"
    write_baseline(str(baseline_file), findings)
    baseline = load_baseline(str(baseline_file))

    # Grandfathered: the same finding is fully absorbed...
    fresh, matched = apply_baseline(lint_paths([str(tmp_path)]), baseline)
    assert fresh == [] and matched == 1

    # ...and stays absorbed when unrelated edits shift the line numbers,
    # while a NEW finding still comes through.
    bad.write_text("GREETING = 'hello'\n\n" + BAD_CLOCK +
                   "\ndef g(x=[]):\n    return x\n")
    fresh, matched = apply_baseline(lint_paths([str(tmp_path)]), baseline)
    assert matched == 1
    assert [f.rule for f in fresh] == ["mutable-default"]


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('{"version": 99, "findings": []}\n')
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_shipped_baseline_is_empty_for_serve():
    with open(os.path.join(REPO_ROOT, "artifacts", "lint_baseline.json")) as fh:
        data = json.load(fh)
    serve_debt = [e for e in data["findings"]
                  if e["path"].startswith("repro/serve/")]
    assert serve_debt == []
    assert data["findings"] == []    # in fact the whole tree ships clean


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_text_and_json_reporters():
    findings = lint_source(BAD_CLOCK, "repro/serve/observe.py")
    text = render_text(findings)
    assert "repro/serve/observe.py:4:12:" in text
    assert "[clock-discipline] error:" in text
    assert "1 error(s), 0 warning(s)" in text

    data = json.loads(render_json(findings, grandfathered=2))
    assert data["errors"] == 1 and data["warnings"] == 0
    assert data["grandfathered"] == 2
    (entry,) = data["findings"]
    assert entry["rule"] == "clock-discipline"
    assert entry["line"] == 4
    assert entry["module"] == "repro/serve/observe.py"


# ----------------------------------------------------------------------
# The CLI and the tier-1 gate
# ----------------------------------------------------------------------
def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, cwd=cwd, env=env)


def test_tree_is_clean():
    """The tier-1 lint gate: zero findings of any severity over src."""
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_self_check_exits_zero():
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s), 0 warning(s)" in proc.stdout


def test_cli_diff_mode_single_file_and_failure_exit(tmp_path):
    bad = tmp_path / "patch.py"
    bad.write_text("def f(x={}):\n    return x\n")
    proc = run_cli(str(bad), "--no-baseline")
    assert proc.returncode == 1
    assert "mutable-default" in proc.stdout

    good = tmp_path / "ok.py"
    good.write_text("def f(x=None):\n    return x\n")
    proc = run_cli(str(good), "--no-baseline")
    assert proc.returncode == 0


def test_cli_select_and_json(tmp_path):
    bad = tmp_path / "patch.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n\ndef f(x=[]):\n"
                   "    return x\n")
    proc = run_cli(str(bad), "--no-baseline", "--select", "bare-except",
                   "--format", "json")
    data = json.loads(proc.stdout)
    assert [f["rule"] for f in data["findings"]] == ["bare-except"]
    assert proc.returncode == 0          # warn-only without --strict
    proc = run_cli(str(bad), "--no-baseline", "--select", "bare-except",
                   "--strict")
    assert proc.returncode == 1          # --strict promotes warnings


def test_cli_list_rules_and_unknown_rule():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in EXPECTED_RULES:
        assert rule_id in proc.stdout
    proc = run_cli("--select", "no-such-rule", "src")
    assert proc.returncode == 2


def test_cli_write_baseline_round_trip(tmp_path):
    bad = tmp_path / "patch.py"
    bad.write_text("def g(x=[]):\n    return x\n")   # unscoped error rule
    baseline = tmp_path / "base.json"
    proc = run_cli(str(bad), "--write-baseline", "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "1 finding(s)" in proc.stdout
    proc = run_cli(str(bad), "--baseline", str(baseline))
    assert proc.returncode == 0
    assert "1 grandfathered" in proc.stdout


# ----------------------------------------------------------------------
# Acceptance scenarios from the standing invariants
# ----------------------------------------------------------------------
def _real_source(rel):
    with open(os.path.join(SRC, rel), encoding="utf-8") as fh:
        return fh.read()


def test_injected_wall_clock_in_observe_fails():
    source = _real_source("repro/serve/observe.py")
    source += "\n\ndef _bad_probe():\n    return time.time()\n"
    fired = [f.rule for f in lint_source(source, "src/repro/serve/observe.py")]
    assert "clock-discipline" in fired


def test_injected_global_rng_in_sampling_fails():
    source = _real_source("repro/serve/sampling.py")
    source += "\n\nimport numpy as np\n\ndef _bad_draw():\n"
    source += "    return np.random.rand(4)\n"
    fired = [f.rule for f in lint_source(source,
                                         "src/repro/serve/sampling.py")]
    assert "rng-discipline" in fired
