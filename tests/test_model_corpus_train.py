"""Tests for the synthetic corpora and the training loop."""

import numpy as np
import pytest

from repro.model.corpus import (
    KEY_BASE,
    HmmCorpus,
    InductionCorpus,
    MixedCorpus,
)
from repro.model.train import Adam, train_lm
from repro.model.transformer import ModelConfig, TransformerLM


class TestHmmCorpus:
    def test_tokens_in_range(self):
        c = HmmCorpus(vocab_size=256)
        s = c.sample(500, np.random.default_rng(0))
        assert s.min() >= c.token_lo and s.max() < 256

    def test_deterministic_given_rng(self):
        c = HmmCorpus()
        a = c.sample(100, np.random.default_rng(7))
        b = c.sample(100, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_transitions_are_stochastic(self):
        c = HmmCorpus()
        assert np.allclose(c.trans.sum(axis=1), 1.0)

    def test_entropy_bound_positive(self):
        assert HmmCorpus().entropy_rate_bound() > 0

    def test_structure_learnable(self):
        # Bigram statistics should be far from uniform — the corpus has
        # learnable structure.
        c = HmmCorpus()
        s = c.sample(20000, np.random.default_rng(1))
        _, counts = np.unique(s, return_counts=True)
        freq = counts / counts.sum()
        uniform = 1.0 / freq.size
        assert freq.max() > 4 * uniform


class TestInductionCorpus:
    def test_key_value_consistency(self):
        c = InductionCorpus(vocab_size=256, n_keys=16)
        s = c.sample(400, np.random.default_rng(0))
        mapping = {}
        for i in range(len(s) - 1):
            if KEY_BASE <= s[i] < KEY_BASE + 16:
                mapping.setdefault(s[i], set()).add(s[i + 1])
        # Every key maps to exactly one value within a sequence.
        assert all(len(v) == 1 for v in mapping.values())
        assert len(mapping) >= 1


class TestMixedCorpus:
    def make(self):
        return MixedCorpus(HmmCorpus(), InductionCorpus())

    def test_batch_shapes(self):
        c = self.make()
        batches = list(c.batches(3, 4, 32, seed=0))
        assert len(batches) == 3
        ids, tgt = batches[0]
        assert ids.shape == (4, 32) and tgt.shape == (4, 32)
        assert np.array_equal(ids[:, 1:], tgt[:, :-1])

    def test_eval_rows(self):
        rows = self.make().eval_tokens(256, 64)
        assert rows.shape == (4, 65)


class TestTraining:
    def test_loss_decreases(self):
        cfg = ModelConfig(vocab_size=64, d_model=32, n_heads=2, n_layers=1,
                          d_ff=48, max_seq=64, arch="llama", seed=2)
        m = TransformerLM(cfg)
        corpus = MixedCorpus(HmmCorpus(vocab_size=64, n_keys=4),
                             InductionCorpus(vocab_size=64, n_keys=4),
                             induction_frac=0.0)
        batches = list(corpus.batches(40, 4, 32, seed=3))
        report = train_lm(m, batches, lr=5e-3, warmup=5)
        assert report.smoothed_final(10) < report.losses[0] - 0.3

    def test_adam_updates_params(self, rng):
        cfg = ModelConfig(vocab_size=16, d_model=8, n_heads=2, n_layers=1,
                          d_ff=12, max_seq=16, arch="llama", seed=4)
        m = TransformerLM(cfg)
        before = {k: v.copy() for k, v in m.params.items()}
        opt = Adam(m.params, lr=1e-2)
        ids = rng.integers(0, 16, size=(2, 8))
        _, grads = m.loss_and_grads(ids, ids)
        opt.step(m.params, grads)
        changed = sum(not np.allclose(before[k], m.params[k]) for k in before)
        assert changed >= len(before) - 1  # all but possibly unused pos rows

    def test_gradient_clipping_bounds_step(self, rng):
        params = {"w": np.zeros(4)}
        opt = Adam(params, lr=1.0, clip=1.0)
        opt.step(params, {"w": np.full(4, 1e6)})
        assert np.max(np.abs(params["w"])) <= 1.0 + 1e-6
