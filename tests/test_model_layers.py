"""Gradient checks and behaviour tests for every NN layer."""

import numpy as np
import pytest

from repro.model import layers as L


def num_grad(f, x, eps=1e-5):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(5, 4))
        y, _ = L.linear_fwd(x, w)
        assert y.shape == (2, 3, 5)
        assert np.allclose(y, x @ w.T)

    def test_backward(self, rng):
        x = rng.normal(size=(2, 4))
        w = rng.normal(size=(3, 4))
        y, cache = L.linear_fwd(x, w)
        dy = rng.normal(size=y.shape)
        dx, dw = L.linear_bwd(dy, cache)

        def loss():
            return float(np.sum(L.linear_fwd(x, w)[0] * dy))

        assert np.allclose(dx, num_grad(loss, x), atol=1e-5)
        assert np.allclose(dw, num_grad(loss, w), atol=1e-5)


class TestNorms:
    def test_rmsnorm_grad(self, rng):
        x = rng.normal(size=(2, 3, 6))
        g = rng.normal(size=6) + 1.0
        y, cache = L.rmsnorm_fwd(x, g)
        dy = rng.normal(size=y.shape)
        dx, dg = L.rmsnorm_bwd(dy, cache)

        def loss():
            return float(np.sum(L.rmsnorm_fwd(x, g)[0] * dy))

        assert np.allclose(dx, num_grad(loss, x), atol=1e-5)
        assert np.allclose(dg, num_grad(loss, g), atol=1e-5)

    def test_layernorm_grad(self, rng):
        x = rng.normal(size=(2, 4))
        g = rng.normal(size=4) + 1.0
        b = rng.normal(size=4)
        y, cache = L.layernorm_fwd(x, g, b)
        dy = rng.normal(size=y.shape)
        dx, dg, db = L.layernorm_bwd(dy, cache)

        def loss():
            return float(np.sum(L.layernorm_fwd(x, g, b)[0] * dy))

        assert np.allclose(dx, num_grad(loss, x), atol=1e-5)
        assert np.allclose(dg, num_grad(loss, g), atol=1e-5)
        assert np.allclose(db, num_grad(loss, b), atol=1e-5)

    def test_rmsnorm_unit_rms(self, rng):
        x = rng.normal(size=(8, 16)) * 5
        y, _ = L.rmsnorm_fwd(x, np.ones(16))
        rms = np.sqrt(np.mean(y * y, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)


class TestRope:
    def test_norm_preserving(self, rng):
        cos, sin = L.rope_tables(8, 32)
        x = rng.normal(size=(2, 5, 8))
        y = L.apply_rope(x, cos, sin)
        assert np.allclose(np.linalg.norm(y, axis=-1), np.linalg.norm(x, axis=-1))

    def test_position_zero_is_identity(self, rng):
        cos, sin = L.rope_tables(8, 32)
        x = rng.normal(size=(1, 1, 8))
        assert np.allclose(L.apply_rope(x, cos, sin), x)

    def test_offset_consistency(self, rng):
        # Rotating token t with offset o == rotating at position o + t.
        cos, sin = L.rope_tables(8, 32)
        x = rng.normal(size=(1, 4, 8))
        full = L.apply_rope(x, cos, sin)
        tail = L.apply_rope(x[:, 2:], cos, sin, offset=2)
        assert np.allclose(full[:, 2:], tail)

    def test_relative_property(self, rng):
        # q.k depends only on relative distance — the RoPE property.
        cos, sin = L.rope_tables(16, 64)
        q = rng.normal(size=16)
        k = rng.normal(size=16)

        def score(i, j):
            qr = L.apply_rope(q[None, None], cos, sin, offset=i)[0, 0]
            kr = L.apply_rope(k[None, None], cos, sin, offset=j)[0, 0]
            return float(qr @ kr)

        assert score(3, 1) == pytest.approx(score(10, 8), abs=1e-9)

    def test_backward_is_inverse_rotation(self, rng):
        cos, sin = L.rope_tables(8, 32)
        x = rng.normal(size=(2, 5, 8))
        y, cache = L.rope_fwd(x, cos, sin)
        dy = rng.normal(size=y.shape)
        dx = L.rope_bwd(dy, cache)
        # <dx, x> must equal <dy, y> for a rotation (orthogonality).
        assert np.sum(dx * x) == pytest.approx(np.sum(dy * y))


class TestActivationsAndAttention:
    def test_silu_grad(self, rng):
        x = rng.normal(size=(3, 4))
        y, cache = L.silu_fwd(x)
        dy = rng.normal(size=y.shape)
        dx = L.silu_bwd(dy, cache)

        def loss():
            return float(np.sum(L.silu_fwd(x)[0] * dy))

        assert np.allclose(dx, num_grad(loss, x), atol=1e-5)

    def test_relu(self, rng):
        x = np.array([-1.0, 0.0, 2.0])
        y, cache = L.relu_fwd(x)
        assert list(y) == [0, 0, 2]
        assert list(L.relu_bwd(np.ones(3), cache)) == [0, 0, 1]

    def test_attention_causality(self, rng):
        q = rng.normal(size=(1, 1, 4, 8))
        k = rng.normal(size=(1, 1, 4, 8))
        v = rng.normal(size=(1, 1, 4, 8))
        out1, _ = L.causal_attention_fwd(q, k, v)
        # Changing the future must not change earlier outputs.
        k2, v2 = k.copy(), v.copy()
        k2[..., 3, :] += 100
        v2[..., 3, :] += 100
        out2, _ = L.causal_attention_fwd(q, k2, v2)
        assert np.allclose(out1[..., :3, :], out2[..., :3, :])

    def test_attention_grad(self, rng):
        q = rng.normal(size=(1, 2, 3, 4))
        k = rng.normal(size=(1, 2, 3, 4))
        v = rng.normal(size=(1, 2, 3, 4))
        out, cache = L.causal_attention_fwd(q, k, v)
        dout = rng.normal(size=out.shape)
        dq, dk, dv = L.causal_attention_bwd(dout, cache)

        def loss():
            return float(np.sum(L.causal_attention_fwd(q, k, v)[0] * dout))

        assert np.allclose(dq, num_grad(loss, q), atol=1e-5)
        assert np.allclose(dk, num_grad(loss, k), atol=1e-5)
        assert np.allclose(dv, num_grad(loss, v), atol=1e-5)

    def test_softmax_rows_sum_to_one(self, rng):
        p = L.softmax(rng.normal(size=(4, 7)))
        assert np.allclose(p.sum(axis=-1), 1.0)


class TestCrossEntropy:
    def test_uniform_logits_log_v(self):
        logits = np.zeros((1, 2, 10))
        targets = np.array([[3, 7]])
        loss, _ = L.cross_entropy_fwd(logits, targets)
        assert loss == pytest.approx(np.log(10))

    def test_gradient(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        _, cache = L.cross_entropy_fwd(logits, targets)
        dlogits = L.cross_entropy_bwd(cache)

        def loss():
            return L.cross_entropy_fwd(logits, targets)[0]

        assert np.allclose(dlogits, num_grad(loss, logits), atol=1e-5)
