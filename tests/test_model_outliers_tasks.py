"""Tests for outlier injection and the generation-task metrics."""

import numpy as np
import pytest

from repro.model.corpus import HmmCorpus
from repro.model.outliers import inject_outliers, outlier_channel_stats
from repro.model.tasks import ContinuationTask, RecallTask, bleu, token_f1
from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache


class TestOutlierInjection:
    def test_function_preserved(self, rng):
        cfg = ModelConfig(vocab_size=32, d_model=32, n_heads=2, n_layers=2,
                          d_ff=48, max_seq=32, arch="llama", seed=5)
        m = TransformerLM(cfg)
        ids = rng.integers(0, 32, size=(2, 10))
        base = m.forward_logits(ids)
        inj = TransformerLM(cfg, inject_outliers(m.params, cfg, scale=16.0, frac=0.1))
        assert np.allclose(inj.forward_logits(ids), base, atol=1e-8)

    def test_function_preserved_opt(self, rng):
        cfg = ModelConfig(vocab_size=32, d_model=32, n_heads=2, n_layers=1,
                          d_ff=48, max_seq=32, arch="opt", seed=5)
        m = TransformerLM(cfg)
        ids = rng.integers(0, 32, size=(1, 8))
        inj = TransformerLM(cfg, inject_outliers(m.params, cfg, scale=16.0, frac=0.1))
        assert np.allclose(inj.forward_logits(ids), m.forward_logits(ids), atol=1e-8)

    def test_creates_weight_outliers(self, rng):
        cfg = ModelConfig(vocab_size=32, d_model=64, n_heads=2, n_layers=1,
                          d_ff=96, max_seq=32, arch="llama", seed=6)
        m = TransformerLM(cfg)
        inj = inject_outliers(m.params, cfg, scale=16.0, frac=0.05)
        stats = outlier_channel_stats(inj["layers.0.attn.wv"].T)
        base = outlier_channel_stats(m.params["layers.0.attn.wv"].T)
        assert stats["max_over_median"] > 4 * base["max_over_median"]

    def test_original_untouched(self, rng):
        cfg = ModelConfig(vocab_size=32, d_model=32, n_heads=2, n_layers=1,
                          d_ff=48, max_seq=32, arch="llama", seed=7)
        m = TransformerLM(cfg)
        snapshot = m.params["layers.0.attn.wv"].copy()
        inject_outliers(m.params, cfg)
        assert np.array_equal(m.params["layers.0.attn.wv"], snapshot)


class TestMetrics:
    def test_f1_perfect(self):
        assert token_f1([1, 2, 3], [1, 2, 3]) == 1.0

    def test_f1_disjoint(self):
        assert token_f1([1], [2]) == 0.0

    def test_f1_partial(self):
        assert token_f1([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_f1_empty(self):
        assert token_f1([], []) == 1.0
        assert token_f1([1], []) == 0.0

    def test_bleu_identity(self):
        assert bleu([1, 2, 3, 4, 5], [1, 2, 3, 4, 5]) > 0.9

    def test_bleu_disjoint_low(self):
        assert bleu([1] * 8, [2] * 8) < 0.1

    def test_bleu_brevity_penalty(self):
        long_ref = list(range(20))
        assert bleu(long_ref[:5], long_ref) < bleu(long_ref, long_ref)


class TestTasks:
    def test_recall_episode_structure(self):
        task = RecallTask(prompt_len=64, n_pairs=3, n_episodes=2)
        rng = np.random.default_rng(0)
        prompt, answer = task._build_episode(rng)
        assert len(prompt) == 64
        # Query key appears earlier in the prompt, followed by answer.
        key = prompt[-1]
        idx = np.flatnonzero(prompt[:-1] == key)
        assert idx.size >= 1
        assert prompt[idx[0] + 1] == answer

    def test_recall_runs_on_untrained_model(self):
        cfg = ModelConfig(vocab_size=64, d_model=16, n_heads=2, n_layers=1,
                          d_ff=24, max_seq=128, arch="llama", seed=8)
        m = TransformerLM(cfg)
        task = RecallTask(vocab_size=64, prompt_len=48, n_episodes=2, n_pairs=2)
        score = task.evaluate(m, FP16KVCache)
        assert 0.0 <= score <= 1.0

    def test_continuation_references_and_eval(self):
        cfg = ModelConfig(vocab_size=64, d_model=16, n_heads=2, n_layers=1,
                          d_ff=24, max_seq=160, arch="llama", seed=9)
        m = TransformerLM(cfg)
        task = ContinuationTask(hmm=HmmCorpus(vocab_size=64), prompt_len=24,
                                gen_len=8, n_episodes=2)
        refs = task.references(m, FP16KVCache)
        # FP16 vs itself: identical generations, BLEU = 1.
        score = task.evaluate(m, FP16KVCache, refs)
        assert score == pytest.approx(1.0, abs=1e-6)
