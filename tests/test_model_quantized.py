"""Tests for the PTQ harness internals (repro.model.quantized)."""

import numpy as np
import pytest

from repro.core.selection import VarianceSelector
from repro.model.quantized import (
    PTQConfig,
    build_ptq,
    int_kv_prefill_qdq,
    mant_kv_prefill_qdq,
)
from repro.model.transformer import ModelConfig, TransformerLM


def tiny_model(arch="llama"):
    cfg = ModelConfig(vocab_size=48, d_model=32, n_heads=2, n_layers=2,
                      d_ff=48, max_seq=64, arch=arch, seed=3)
    return TransformerLM(cfg)


class TestPTQConfigNames:
    def test_default_name(self):
        assert PTQConfig(method="mant", w_bits=4, a_bits=8).name == "mant-W4A8"

    def test_kv_suffix(self):
        cfg = PTQConfig(method="mant", kv_method="mant", kv_bits=4)
        assert cfg.name.endswith("+KVmant4")

    def test_label_overrides(self):
        assert PTQConfig(label="row 7").name == "row 7"


class TestKVPrefillQdq:
    def test_mant_shapes(self, rng):
        k = rng.normal(size=(2, 2, 70, 16))
        v = rng.normal(size=(2, 2, 70, 16))
        sel = VarianceSelector(group_size=32)
        kq, vq = mant_kv_prefill_qdq(k, v, sel, bits=4, group_size=32)
        assert kq.shape == k.shape and vq.shape == v.shape

    def test_mant_tail_is_int8_staged(self, rng):
        # 70 tokens with window 32: 64 finalized, 6 staged at INT8.
        k = rng.normal(size=(1, 1, 70, 16))
        v = rng.normal(size=(1, 1, 70, 16))
        sel = VarianceSelector(group_size=32)
        _, vq = mant_kv_prefill_qdq(k, v, sel, bits=4, group_size=32, window=32)
        tail_err = np.abs(vq[..., 64:, :] - v[..., 64:, :])
        body_err = np.abs(vq[..., :64, :] - v[..., :64, :])
        assert tail_err.mean() < body_err.mean()  # INT8 tail beats MANT4 body

    def test_int_kv_shapes(self, rng):
        k = rng.normal(size=(2, 2, 20, 16))
        v = rng.normal(size=(2, 2, 20, 16))
        kq, vq = int_kv_prefill_qdq(k, v, bits=4, group_size=64)
        assert kq.shape == k.shape
        assert np.all(np.isfinite(vq))

    def test_mant_matches_cache_semantics(self, rng):
        # The vectorised prefill hook and the streaming MantKVCache
        # agree on finalized windows (same selector, same grouping).
        from repro.quant.kvcache import MantKVCache

        sel = VarianceSelector(group_size=32).fit(rng.normal(size=(256, 32)))
        k = rng.normal(size=(1, 2, 64, 16))
        v = rng.normal(size=(1, 2, 64, 16))
        kq, vq = mant_kv_prefill_qdq(k, v, sel, bits=4, group_size=32, window=32)
        cache = MantKVCache(selector=sel, bits=4, group_size=32, window=32)
        cache.prefill(k[0], v[0])
        assert np.allclose(cache.values(), vq[0], atol=1e-9)
        assert np.allclose(cache.keys(), kq[0], atol=1e-9)


class TestBuildPtqPerArch:
    @pytest.mark.parametrize("arch", ["llama", "opt"])
    @pytest.mark.parametrize("method", ["mant", "int", "ant", "olive", "tender"])
    def test_forward_runs(self, arch, method, rng):
        model = tiny_model(arch)
        cfg = PTQConfig(method=method, w_bits=4, a_bits=8, group_size=16)
        setup = build_ptq(model, cfg, None)
        ids = rng.integers(0, 48, size=(2, 10))
        logits = model.forward_logits(ids, weights=setup.weights,
                                      act_quant=setup.act_quant)
        assert np.all(np.isfinite(logits))

    def test_fp16_config_is_identity(self, rng):
        model = tiny_model()
        setup = build_ptq(model, PTQConfig(method="fp16", w_bits=16, a_bits=16), None)
        assert setup.act_quant is None and setup.kv_quant is None
        name = model.config.linear_names()[0]
        assert np.array_equal(setup.weights[name], model.params[name])

    def test_kv_hook_preserves_shapes(self, rng):
        model = tiny_model()
        cfg = PTQConfig(method="mant", w_bits=4, a_bits=8, group_size=16,
                        kv_method="mant", kv_bits=4, attn_act_bits=8)
        setup = build_ptq(model, cfg, None)
        ids = rng.integers(0, 48, size=(1, 34))
        logits = model.forward_logits(ids, weights=setup.weights,
                                      act_quant=setup.act_quant,
                                      kv_quant=setup.kv_quant)
        assert logits.shape == (1, 34, 48)

    def test_unknown_method_raises(self):
        model = tiny_model()
        with pytest.raises(ValueError):
            build_ptq(model, PTQConfig(method="quux"), None)
