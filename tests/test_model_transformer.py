"""Tests for the transformer model: shapes, backprop, decode paths."""

import numpy as np
import pytest

from repro.model.transformer import ModelConfig, TransformerLM, init_params, param_count
from repro.quant.kvcache import FP16KVCache


def tiny(arch="llama", **kw):
    defaults = dict(vocab_size=23, d_model=16, n_heads=2, n_layers=2,
                    d_ff=24, max_seq=32, arch=arch, seed=1)
    defaults.update(kw)
    return ModelConfig(**defaults)


class TestConfig:
    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=10, n_heads=3)

    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            ModelConfig(arch="gpt5")

    def test_rope_even_head(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=6, n_heads=2, arch="llama")

    def test_linear_names(self):
        assert len(tiny("llama").linear_names()) == 2 * 7
        assert len(tiny("opt").linear_names()) == 2 * 6


class TestForward:
    @pytest.mark.parametrize("arch", ["llama", "opt"])
    def test_logits_shape(self, arch, rng):
        m = TransformerLM(tiny(arch))
        ids = rng.integers(0, 23, size=(3, 8))
        assert m.forward_logits(ids).shape == (3, 8, 23)

    def test_deterministic(self, rng):
        m = TransformerLM(tiny())
        ids = rng.integers(0, 23, size=(1, 8))
        assert np.array_equal(m.forward_logits(ids), m.forward_logits(ids))

    def test_weight_substitution(self, rng):
        m = TransformerLM(tiny())
        ids = rng.integers(0, 23, size=(1, 8))
        base = m.forward_logits(ids)
        w2 = {k: v.copy() for k, v in m.params.items()}
        w2["layers.0.attn.wq"] = w2["layers.0.attn.wq"] * 0
        changed = m.forward_logits(ids, weights=w2)
        assert not np.allclose(base, changed)

    def test_act_quant_hook_called_per_linear(self, rng):
        m = TransformerLM(tiny())
        seen = []

        def hook(name, x):
            seen.append(name)
            return x

        m.forward_logits(rng.integers(0, 23, size=(1, 4)), act_quant=hook)
        # 2 layers x (attn input, wo input, ffn gate input, ffn down input)
        assert len(seen) == 2 * 4

    def test_kv_quant_hook_shapes(self, rng):
        m = TransformerLM(tiny())
        shapes = []

        def hook(layer, q, k, v):
            shapes.append((q.shape, k.shape, v.shape))
            return q, k, v

        m.forward_logits(rng.integers(0, 23, size=(2, 6)), act_quant=None, kv_quant=hook)
        assert shapes[0][0] == (2, 2, 6, 8)


class TestBackprop:
    @pytest.mark.parametrize("arch", ["llama", "opt"])
    def test_gradcheck_sampled(self, arch, rng):
        cfg = tiny(arch, d_model=8, d_ff=12, vocab_size=11)
        m = TransformerLM(cfg)
        ids = rng.integers(0, 11, size=(2, 5))
        tgt = rng.integers(0, 11, size=(2, 5))
        loss, grads = m.loss_and_grads(ids, tgt)
        eps = 1e-5
        for name in ["embed", "layers.0.attn.wv", "layers.1.norm1.g"]:
            p = m.params[name]
            flat = p.ravel()
            for i in rng.choice(flat.size, size=3, replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                lp, _ = m.loss_and_grads(ids, tgt)
                flat[i] = orig - eps
                lm, _ = m.loss_and_grads(ids, tgt)
                flat[i] = orig
                num = (lp - lm) / (2 * eps)
                ana = grads[name].ravel()[i]
                assert num == pytest.approx(ana, abs=1e-4, rel=1e-3), name

    def test_grads_cover_all_params(self, rng):
        m = TransformerLM(tiny())
        _, grads = m.loss_and_grads(
            rng.integers(0, 23, size=(2, 6)), rng.integers(0, 23, size=(2, 6))
        )
        assert set(grads) == set(m.params)


class TestDecodePath:
    @pytest.mark.parametrize("arch", ["llama", "opt"])
    def test_decode_matches_teacher_forcing(self, arch, rng):
        m = TransformerLM(tiny(arch))
        ids = rng.integers(0, 23, size=17)
        tf = m.forward_logits(ids[None, :])[0]
        caches = [FP16KVCache() for _ in range(2)]
        out = [m.prefill(ids[:9], caches)]
        for j in range(9, 17):
            out.append(m.decode_step(int(ids[j]), caches, pos=j))
        dec = np.stack(out)
        assert np.allclose(dec[:-1], tf[8:16], atol=1e-10)

    def test_param_count(self):
        m = TransformerLM(tiny())
        assert param_count(m.params) == sum(p.size for p in m.params.values())

    def test_init_deterministic(self):
        a = init_params(tiny())
        b = init_params(tiny())
        assert all(np.array_equal(a[k], b[k]) for k in a)
