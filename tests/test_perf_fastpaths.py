"""Equality tests for the vectorized fast paths.

The perf refactor (LUT-boundary encode, fused select+encode,
single-einsum GEMM, buffered KV caches) is only allowed to change
*speed*; these tests pin each fast path to its reference formulation —
bit-exactly where the arithmetic is exact, to float tolerance where
summation order legitimately differs.
"""

import numpy as np
import pytest

from repro.core.codec import INT_A, MantCodec, grid_tables
from repro.core.fused import (
    fused_group_gemm,
    fused_group_gemm_two_psum,
    integer_partial_sums,
    quantize_activations_int8,
    reference_group_gemm,
)
from repro.core.groups import to_groups, from_groups
from repro.core.mant import MANT_WEIGHT_A_SET, MantGrid, get_mant_grid
from repro.core.selection import MseSearchSelector, VarianceSelector
from repro.datatypes.int_type import IntType
from repro.quant.kvcache import (
    FP16KVCache,
    IntKVCache,
    MantKVCache,
    TokenBuffer,
)

ALL_A = tuple(float(a) for a in MANT_WEIGHT_A_SET) + (float(INT_A),)


def _reference_nearest_grid_index(values, grid):
    """The seed clip/where nearest-point search, kept as the oracle."""
    idx = np.searchsorted(grid, values)
    idx = np.clip(idx, 1, len(grid) - 1)
    left = grid[idx - 1]
    right = grid[idx]
    choose_left = (values - left) <= (right - values)
    return np.where(choose_left, idx - 1, idx)


# ----------------------------------------------------------------------
# 1. LUT-boundary encode ≡ reference nearest-point search
# ----------------------------------------------------------------------
class TestLutEncode:
    @pytest.mark.parametrize("bits", [2, 3, 4])
    @pytest.mark.parametrize("a", MANT_WEIGHT_A_SET)
    def test_boundary_encode_bit_exact(self, bits, a, rng):
        grid = MantGrid(float(a), bits)
        span = grid.grid_max * 1.2
        vals = rng.uniform(-span, span, size=4096)
        # Exact grid points and exact midpoints (ties) must agree too:
        # MANT grids are integer-valued, so midpoints are representable.
        ties = 0.5 * (grid.grid[:-1] + grid.grid[1:])
        vals = np.concatenate([vals, grid.grid, ties])
        assert np.array_equal(
            grid.encode(vals), _reference_nearest_grid_index(vals, grid.grid)
        )

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_codec_encode_matches_per_grid_reference(self, bits, rng):
        """Gather-by-grid-index codec ≡ per-coefficient bucketed encode."""
        codec = MantCodec(bits=bits, group_size=16, fp16_scales=False)
        w = rng.normal(size=(24, 64))
        a = rng.choice(ALL_A, size=(24, 4))
        enc = codec.encode(w, a)
        groups = to_groups(w, 16, axis=-1).groups
        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        itype = IntType(bits)
        for i in range(24):
            for j in range(4):
                vals = groups[i, j]
                if a[i, j] == INT_A:
                    q = itype.round_clip(vals / (amax[i, j] / itype.qmax))
                    ref_sign = np.where(q < 0, -1, 1)
                    ref_mag = np.abs(q)
                else:
                    g = get_mant_grid(a[i, j], bits)
                    gi = _reference_nearest_grid_index(
                        vals / amax[i, j], g.grid / g.grid_max
                    )
                    L = g.levels_per_sign
                    ref_sign = np.where(gi >= L, 1, -1)
                    ref_mag = np.where(gi >= L, gi - L, L - 1 - gi)
                assert np.array_equal(enc.sign[i, j], ref_sign), (i, j, a[i, j])
                assert np.array_equal(enc.magnitude[i, j], ref_mag), (i, j, a[i, j])

    @pytest.mark.parametrize("a", ALL_A)
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_grid_tables_decode_consistent(self, a, bits):
        """sign/magnitude LUTs invert to the grid values themselves."""
        t = grid_tables(a, bits)
        if a == INT_A:
            recon = t.sign.astype(np.float64) * t.magnitude
        else:
            mag = t.magnitude.astype(np.float64)
            recon = t.sign * (a * mag + 2.0**mag)
        assert np.allclose(recon, t.grid)


# ----------------------------------------------------------------------
# 2. Fused select+encode ≡ select-then-encode
# ----------------------------------------------------------------------
class TestFusedSelectEncode:
    @pytest.mark.parametrize("fp16_scales", [False, True])
    @pytest.mark.parametrize("cols", [128, 100])  # 100 exercises padding
    def test_fused_equals_two_step(self, fp16_scales, cols, rng):
        sel = MseSearchSelector(group_size=32)
        codec = MantCodec(bits=4, group_size=32, fp16_scales=fp16_scales)
        w = rng.normal(size=(12, cols)) * rng.uniform(0.1, 10)
        fused = sel.select_and_encode(w, codec=codec)
        two_step = codec.encode(w, sel.select(w))
        assert np.array_equal(fused.a_coeff, two_step.a_coeff)
        assert np.array_equal(fused.sign, two_step.sign)
        assert np.array_equal(fused.magnitude, two_step.magnitude)
        assert np.array_equal(fused.scale, two_step.scale)
        assert fused.original_shape == two_step.original_shape
        assert fused.pad == two_step.pad

    def test_fused_with_activation_weighting(self, rng):
        sel = MseSearchSelector(group_size=16)
        codec = MantCodec(bits=4, group_size=16, fp16_scales=True)
        w = rng.normal(size=(8, 64))
        h = np.exp(rng.normal(size=64) * 2)
        fused = sel.select_and_encode(w, act_sq_mean=h, codec=codec)
        two_step = codec.encode(w, sel.select(w, act_sq_mean=h))
        assert np.array_equal(fused.a_coeff, two_step.a_coeff)
        assert np.array_equal(fused.magnitude, two_step.magnitude)

    def test_codec_mismatch_rejected(self, rng):
        sel = MseSearchSelector(group_size=32)
        with pytest.raises(ValueError):
            sel.select_and_encode(
                rng.normal(size=(2, 64)), codec=MantCodec(group_size=64)
            )

    def test_from_codes_roundtrip(self, rng):
        """from_codes(grid indices) ≡ encode for hand-built codes."""
        codec = MantCodec(bits=4, group_size=16, fp16_scales=False)
        w = rng.normal(size=(4, 32))
        a = rng.choice(ALL_A, size=(4, 2))
        enc = codec.encode(w, a)
        # Recover grid indices from sign/magnitude and rebuild.
        groups = to_groups(w, 16, axis=-1).groups
        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        codes = np.empty(enc.sign.shape, dtype=np.intp)
        for i in range(4):
            for j in range(2):
                t = grid_tables(float(a[i, j]), 4)
                vals = enc.sign[i, j].astype(np.float64)
                if a[i, j] == INT_A:
                    raw = vals * enc.magnitude[i, j]
                else:
                    mag = enc.magnitude[i, j].astype(np.float64)
                    raw = vals * (a[i, j] * mag + 2.0**mag)
                codes[i, j] = np.searchsorted(t.grid, raw)
        rebuilt = codec.from_codes(codes, a, amax, w.shape, pad=0)
        assert np.array_equal(rebuilt.sign, enc.sign)
        assert np.array_equal(rebuilt.magnitude, enc.magnitude)
        assert np.array_equal(rebuilt.scale, enc.scale)


# ----------------------------------------------------------------------
# 3. Single-einsum GEMM ≡ two-psum integer reference ≡ dequant matmul
# ----------------------------------------------------------------------
class TestGemmEquivalence:
    def _setup(self, rng, m=5, n=9, k=96, group=32):
        codec = MantCodec(group_size=group, fp16_scales=False)
        w = rng.normal(size=(n, k))
        a = rng.choice(ALL_A, size=(n, k // group))
        enc = codec.encode(w, a)
        xq = quantize_activations_int8(rng.normal(size=(m, k)), group)
        return xq, enc

    def test_single_einsum_bit_exact_with_two_psum(self, rng):
        # Every intermediate is an exact integer in float64, so the
        # collapsed einsum must agree bit-for-bit, not just approximately.
        xq, enc = self._setup(rng)
        assert np.array_equal(
            fused_group_gemm(xq, enc), fused_group_gemm_two_psum(xq, enc)
        )

    def test_matches_dequant_matmul(self, rng):
        xq, enc = self._setup(rng)
        np.testing.assert_allclose(
            fused_group_gemm(xq, enc),
            reference_group_gemm(xq, enc),
            rtol=1e-10,
            atol=1e-10,
        )

    def test_repeat_calls_cached_and_encoding_immutable(self, rng):
        xq, enc = self._setup(rng)
        first = fused_group_gemm(xq, enc)
        # Repeat GEMMs reuse the cached precombined terms ...
        assert getattr(enc, "_combined_terms", None) is not None
        assert np.array_equal(first, fused_group_gemm(xq, enc))
        # ... which is safe because the encoding rejects mutation (both
        # in-place writes and field rebinding), so the cache can never
        # serve stale terms.
        with pytest.raises(ValueError):
            enc.magnitude[0, 0, 0] = 3
        with pytest.raises(AttributeError):
            enc.magnitude = enc.magnitude.copy()
        p1, p2 = integer_partial_sums(xq, enc)
        assert p1.dtype == np.int64 and p2.dtype == np.int64


# ----------------------------------------------------------------------
# 4. Buffered KV caches ≡ seed list-based semantics
# ----------------------------------------------------------------------
class _SeedMantKVCache:
    """Verbatim seed MantKVCache: list storage, concatenate per read."""

    def __init__(self, selector=None, bits=4, group_size=64, window=None):
        self.bits = bits
        self.group_size = group_size
        self.window = window or group_size
        self.selector = selector or VarianceSelector(bits=bits, group_size=group_size)
        self._codec = MantCodec(bits=bits, group_size=group_size)
        self._k = []
        self._v_final = []
        self._v_staging = []
        self._acc_sum = self._acc_sqsum = self._acc_max = None
        self._stage_scale = None
        self._int8 = IntType(8)

    def _mant_qdq_lastaxis(self, x):
        g = min(self.group_size, x.shape[-1])
        codec = self._codec if g == self.group_size else MantCodec(self.bits, g)
        flat = x.reshape(-1, x.shape[-1])
        a = self.selector.select_batch(to_groups(flat, g, axis=-1).groups)
        return codec.qdq(flat, a).reshape(x.shape)

    def _reset_window(self, heads, d_head):
        self._acc_sum = np.zeros((heads, d_head))
        self._acc_sqsum = np.zeros((heads, d_head))
        self._acc_max = np.zeros((heads, d_head))

    def _finalize_window(self):
        staged = np.stack(self._v_staging, axis=1)
        heads, t, d_head = staged.shape
        per_channel = np.moveaxis(staged, 1, -1)
        mean = self._acc_sum / t
        var = self._acc_sqsum / t - mean * mean
        amax = np.where(self._acc_max <= 0, 1.0, self._acc_max)
        norm_var = np.clip(var, 0.0, None) / (amax * amax)
        a_sel = np.asarray(self.selector._sorted_a)[
            np.searchsorted(self.selector._thresholds, norm_var)
        ]
        codec = self._codec if t == self.group_size else MantCodec(self.bits, t)
        out = codec.qdq(per_channel.reshape(-1, t), a_sel.reshape(-1, 1))
        self._v_final.append(np.moveaxis(out.reshape(heads, d_head, t), -1, 1))
        self._v_staging = []
        self._reset_window(heads, d_head)

    def prefill(self, k, v):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, seq, d_head = v.shape
        self._k = [self._mant_qdq_lastaxis(k)]
        ch_max = np.max(np.abs(v), axis=1)
        ch_max = np.where(ch_max <= 0, 1.0, ch_max)
        self._stage_scale = (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)
        full = (seq // self.window) * self.window
        self._v_final = []
        self._v_staging = []
        self._reset_window(heads, d_head)
        if full:
            body = v[:, :full, :]
            windows = body.reshape(heads, full // self.window, self.window, d_head)
            per_channel = np.moveaxis(windows, 2, -1)
            flat = per_channel.reshape(-1, self.window)
            a = self.selector.select_batch(flat)
            codec = (
                self._codec
                if self.window == self.group_size
                else MantCodec(self.bits, self.window)
            )
            out = codec.qdq(flat, a[:, None])
            self._v_final.append(
                np.moveaxis(
                    out.reshape(heads, full // self.window, d_head, self.window), -1, 2
                ).reshape(heads, full, d_head)
            )
        for t in range(full, seq):
            self._stage_append(v[:, t, :])

    def _stage_append(self, v_t):
        q = self._int8.round_clip(v_t / self._stage_scale)
        self._v_staging.append(q * self._stage_scale)
        self._acc_sum += v_t
        self._acc_sqsum += v_t * v_t
        self._acc_max = np.maximum(self._acc_max, np.abs(v_t))
        if len(self._v_staging) == self.window:
            self._finalize_window()

    def append(self, k_t, v_t):
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        if self._stage_scale is None:
            heads, d_head = v_t.shape
            ch_max = np.where(np.abs(v_t) <= 0, 1.0, np.abs(v_t))
            # fp16 rounding added over the seed: the library's bootstrap
            # now stores 16-bit channel scales like the prefill path.
            self._stage_scale = (
                (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)
            )
            self._reset_window(heads, d_head)
        self._k.append(self._mant_qdq_lastaxis(k_t)[:, None, :])
        self._stage_append(v_t)

    def keys(self):
        return np.concatenate(self._k, axis=1)

    def values(self):
        parts = list(self._v_final)
        if self._v_staging:
            parts.append(np.stack(self._v_staging, axis=1))
        return np.concatenate(parts, axis=1)


def _drive(cache, seq, extra, heads=2, dh=32, seed=0):
    rng = np.random.default_rng(seed)
    cache.prefill(rng.normal(size=(heads, seq, dh)), rng.normal(size=(heads, seq, dh)))
    for _ in range(extra):
        cache.append(rng.normal(size=(heads, dh)), rng.normal(size=(heads, dh)))


class TestBufferedKVEquivalence:
    @pytest.mark.parametrize(
        "seq,extra",
        [
            (64, 0),     # exactly one window, nothing staged
            (100, 0),    # partial staging window from prefill
            (100, 30),   # staged prefill remainder + staged appends
            (100, 64),   # appends close a window mid-generation
            (32, 200),   # short prefill, many windows during decode
        ],
    )
    def test_mant_cache_matches_seed_semantics(self, seq, extra):
        sel = VarianceSelector(group_size=64).fit(
            np.random.default_rng(9).normal(size=(300, 64))
        )
        new = MantKVCache(selector=sel, group_size=64, window=64)
        seed_impl = _SeedMantKVCache(selector=sel, group_size=64, window=64)
        _drive(new, seq, extra)
        _drive(seed_impl, seq, extra)
        np.testing.assert_allclose(new.keys(), seed_impl.keys(), atol=1e-12)
        np.testing.assert_allclose(new.values(), seed_impl.values(), atol=1e-12)

    def test_decode_without_prefill_matches_seed(self):
        new = MantKVCache(group_size=8, window=8)
        seed_impl = _SeedMantKVCache(group_size=8, window=8)
        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        for _ in range(20):
            kt, vt = rng1.normal(size=(1, 8)), rng1.normal(size=(1, 8))
            new.append(kt, vt)
            kt, vt = rng2.normal(size=(1, 8)), rng2.normal(size=(1, 8))
            seed_impl.append(kt, vt)
        np.testing.assert_allclose(new.keys(), seed_impl.keys(), atol=1e-12)
        np.testing.assert_allclose(new.values(), seed_impl.values(), atol=1e-12)

    def test_reads_are_zero_copy_views(self):
        cache = MantKVCache(group_size=16, window=16)
        _drive(cache, 16, 3, heads=1, dh=16)
        k1, k2 = cache.keys(), cache.keys()
        assert np.shares_memory(k1, k2)
        assert np.shares_memory(cache.values(), cache.values())

    def test_empty_cache_reads(self):
        for cache in (FP16KVCache(), IntKVCache(), MantKVCache()):
            assert cache.keys().size == 0
            assert cache.values().size == 0
            assert cache.seq_len == 0


class TestTokenBuffer:
    def test_growth_preserves_contents(self, rng):
        buf = TokenBuffer(2, 4, capacity=2)
        chunks = [rng.normal(size=(2, 4)) for _ in range(37)]
        for c in chunks:
            buf.append(c)
        assert len(buf) == 37
        np.testing.assert_array_equal(buf.view(), np.stack(chunks, axis=1))

    def test_block_append_and_tail(self, rng):
        buf = TokenBuffer(3, 5, capacity=1)
        block = rng.normal(size=(3, 10, 5))
        buf.append(block)
        np.testing.assert_array_equal(buf.tail(4), block[:, -4:])

    def test_tail_writes_through(self, rng):
        buf = TokenBuffer(1, 2, capacity=8)
        buf.append(rng.normal(size=(1, 6, 2)))
        buf.tail(2)[:] = 7.0
        assert np.all(buf.view()[:, -2:] == 7.0)
        assert not np.any(buf.view()[:, :-2] == 7.0)

    def test_tail_beyond_length_rejected(self, rng):
        buf = TokenBuffer(1, 2, capacity=8)
        buf.append(rng.normal(size=(1, 3, 2)))
        with pytest.raises(ValueError):
            buf.tail(5)


# ----------------------------------------------------------------------
# 5. Variance selector public vectorized API
# ----------------------------------------------------------------------
class TestSelectFromVariances:
    def test_matches_scalar_path(self, rng):
        sel = VarianceSelector(group_size=32)
        nv = rng.uniform(0, 0.5, size=(3, 7))
        batch = sel.select_from_variances(nv)
        assert batch.shape == (3, 7)
        for idx in np.ndindex(nv.shape):
            assert batch[idx] == sel.select_from_variance(nv[idx])

    def test_select_batch_consistent(self, rng):
        sel = VarianceSelector(group_size=16)
        groups = rng.normal(size=(40, 16))
        amax = np.max(np.abs(groups), axis=-1)
        nv = groups.var(axis=-1) / (amax * amax)
        np.testing.assert_array_equal(
            sel.select_batch(groups), sel.select_from_variances(nv)
        )
