"""Cross-method property tests: invariants every quantizer must obey.

Three families of invariant, checked across all fake-quantization
paths with hypothesis-driven inputs:

* **idempotence** — quantizing an already-quantized tensor is a no-op
  (the grid is a fixed point set);
* **scale equivariance** — absmax-scaled methods commute with positive
  rescaling: ``qdq(c x) == c qdq(x)`` (up to FP16-scale rounding, so
  checked with exact scales);
* **group locality** — group-wise methods never let values in one
  group influence another group's reconstruction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import MantCodec
from repro.core.selection import MseSearchSelector
from repro.datatypes.int_type import IntType
from repro.quant.ant import AntQuantizer
from repro.quant.clustering import PerGroupClusterQuantizer
from repro.quant.config import Granularity
from repro.quant.quantizer import GroupQuantizer


def mant_qdq(x):
    sel = MseSearchSelector(group_size=16)
    codec = MantCodec(group_size=16, fp16_scales=False)
    return codec.qdq(x, sel.select(x))


def int_group_qdq(x):
    return GroupQuantizer(IntType(4), Granularity.GROUP, 16,
                          fp16_scales=False).qdq(x)


def ant_group_qdq(x):
    return AntQuantizer(bits=4, granularity=Granularity.GROUP, group_size=16,
                        fp16_scales=False).qdq(x)


def cluster_qdq(x):
    return PerGroupClusterQuantizer(bits=4, group_size=16).qdq(x)


METHODS = {
    "mant": mant_qdq,
    "int-group": int_group_qdq,
    "ant-group": ant_group_qdq,
    "cluster": cluster_qdq,
}


@pytest.mark.parametrize("name", sorted(METHODS))
@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_idempotence(name, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 48)) * rng.uniform(0.01, 100)
    qdq = METHODS[name]
    once = qdq(x)
    twice = qdq(once)
    assert np.allclose(once, twice, rtol=1e-9, atol=1e-12), name


@pytest.mark.parametrize("name", sorted(METHODS))
@given(
    seed=st.integers(0, 2**31 - 1),
    scale=st.floats(1e-3, 1e3),
)
@settings(max_examples=15, deadline=None)
def test_scale_equivariance(name, seed, scale):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 48))
    qdq = METHODS[name]
    assert np.allclose(qdq(x * scale), qdq(x) * scale,
                       rtol=1e-7, atol=1e-10), name


@pytest.mark.parametrize("name", sorted(METHODS))
@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_group_locality(name, seed):
    # Perturbing group 1 must not change group 0's reconstruction.
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 32))  # two groups of 16
    y = x.copy()
    y[:, 16:] = rng.normal(size=(2, 16)) * 50
    qdq = METHODS[name]
    assert np.allclose(qdq(x)[:, :16], qdq(y)[:, :16],
                       rtol=1e-9, atol=1e-12), name


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_mant_never_worse_than_forced_single_grid(seed):
    # The searched per-group coefficients can only improve on any fixed
    # single coefficient (the search space contains it).
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4, 64)) * np.exp(rng.normal(0, 1, size=(1, 64)))
    sel = MseSearchSelector(group_size=16)
    codec = MantCodec(group_size=16, fp16_scales=False)
    searched = codec.qdq(x, sel.select(x))
    for a in (0.0, 17.0, 120.0):
        forced = codec.qdq(x, np.full((4, 4), a))
        assert (np.mean((searched - x) ** 2)
                <= np.mean((forced - x) ** 2) + 1e-12)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_cluster_is_lower_bound(seed):
    # Per-group k-means is the accuracy-optimal 16-level quantizer: no
    # grid-based method may beat it by more than its convergence slack.
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 32))
    c_err = np.mean((cluster_qdq(x) - x) ** 2)
    for name in ("mant", "int-group", "ant-group"):
        err = np.mean((METHODS[name](x) - x) ** 2)
        assert c_err <= err * 1.05 + 1e-12, name
