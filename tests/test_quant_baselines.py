"""Tests for the baseline adaptive methods: ANT, OliVe, Tender, clustering."""

import numpy as np
import pytest

from repro.datatypes.int_type import IntType
from repro.quant.ant import AntQuantizer, select_ant_type
from repro.quant.clustering import PerGroupClusterQuantizer, kmeans_1d
from repro.quant.config import Granularity
from repro.quant.olive import OliveQuantizer
from repro.quant.tender import TenderQuantizer


class TestAnt:
    def test_type_selection_uniform(self, rng):
        dt = select_ant_type(rng.uniform(-1, 1, 4000))
        assert dt.name.startswith("int")

    def test_type_selection_laplace(self, rng):
        x = rng.laplace(scale=0.02, size=4000)
        x[0] = 1.0
        dt = select_ant_type(x)
        assert dt.name.startswith("pot")

    def test_group_adaptive_beats_fixed_int_on_mixed(self, rng):
        # Groups with different shapes: per-group type selection wins.
        g1 = rng.uniform(-1, 1, size=(8, 64))
        g2 = rng.laplace(scale=0.02, size=(8, 64))
        g2[:, 0] = 1.0
        x = np.concatenate([g1, g2], axis=1)
        ant = AntQuantizer(bits=4, granularity=Granularity.GROUP, group_size=64)
        int_err = np.mean((IntType(4).qdq(x) - x) ** 2)
        ant_err = np.mean((ant.qdq(x) - x) ** 2)
        assert ant_err < int_err

    def test_8bit_falls_back_to_int(self, rng):
        x = rng.normal(size=(4, 64))
        ant = AntQuantizer(bits=8, granularity=Granularity.TENSOR)
        out = ant.qdq(x)
        assert np.max(np.abs(out - x)) < np.max(np.abs(x)) / 100

    def test_activation_rule_single_type(self, rng):
        # per_unit_type=False must still produce per-group scales.
        x = rng.normal(size=(4, 128))
        ant = AntQuantizer(bits=4, granularity=Granularity.GROUP, group_size=64,
                           per_unit_type=False)
        assert ant.qdq(x).shape == x.shape

    def test_type_histogram_sums_to_one(self, rng):
        ant = AntQuantizer(bits=4, granularity=Granularity.GROUP, group_size=32)
        hist = ant.type_histogram(rng.normal(size=(8, 128)))
        assert sum(hist.values()) == pytest.approx(1.0)


class TestOlive:
    def test_channelwise_outliers(self, rng):
        x = rng.normal(size=(16, 128))
        x[:, 5] = 30.0
        q = OliveQuantizer(bits=4, granularity=Granularity.CHANNEL)
        out = q.qdq(x, axis=-1)
        assert out.shape == x.shape
        # Outlier channel survives within abfloat relative error.
        assert np.all(np.abs(out[:, 5] - 30.0) / 30.0 < 0.25)

    def test_groupwise_runs(self, rng):
        q = OliveQuantizer(bits=4, granularity=Granularity.GROUP, group_size=64)
        x = rng.normal(size=(4, 128))
        assert q.qdq(x).shape == x.shape

    def test_group_shrink_hurts_olive(self, rng):
        # Tbl. V's effect: at smaller groups the victim cost outweighs
        # outlier protection, so error should not improve the way other
        # methods' does.  We check OVP loses to plain group INT at G-32
        # on outlier-free data (every false outlier costs a victim).
        x = rng.standard_t(df=4, size=(16, 128))
        from repro.quant.quantizer import quantize_dequantize

        int_err = np.mean(
            (quantize_dequantize(x, IntType(4), Granularity.GROUP, 32) - x) ** 2
        )
        ovp_err = np.mean(
            (OliveQuantizer(4, Granularity.GROUP, 32).qdq(x) - x) ** 2
        )
        assert ovp_err > int_err * 0.5  # OVP offers no decisive win here


class TestTender:
    def test_power_of_two_chunk_scales(self, rng):
        x = rng.normal(size=(32, 256))
        x[:, :8] *= 64
        q = TenderQuantizer(bits=4, n_chunks=8, fp16_scales=False)
        out = q.qdq(x, axis=-1)
        assert out.shape == x.shape

    def test_beats_tensorwise_int_with_outlier_channels(self, rng):
        x = rng.normal(size=(64, 256))
        x[:, :4] *= 100
        t_err = np.mean((IntType(4).qdq(x) - x) ** 2)
        tender_err = np.mean((TenderQuantizer(bits=4).qdq(x) - x) ** 2)
        assert tender_err < t_err

    def test_zero_tensor(self):
        q = TenderQuantizer(bits=4)
        x = np.zeros((4, 16))
        assert np.allclose(q.qdq(x), 0)


class TestClustering:
    def test_kmeans_converges_sorted(self, rng):
        groups = rng.normal(size=(10, 64))
        centroids, idx = kmeans_1d(groups, k=16)
        assert centroids.shape == (10, 16)
        assert np.all(np.diff(centroids, axis=1) >= -1e-12)
        assert idx.min() >= 0 and idx.max() < 16

    def test_ideal_beats_every_fixed_grid(self, rng):
        # Fig. 2: per-group clustering is the accuracy-optimal method.
        from repro.core.codec import MantCodec
        from repro.core.selection import MseSearchSelector

        x = rng.normal(size=(16, 128))
        cq = PerGroupClusterQuantizer(bits=4, group_size=64)
        cluster_err = np.mean((cq.qdq(x) - x) ** 2)
        mant_err = np.mean(
            (MantCodec(group_size=64, fp16_scales=False).qdq(
                x, MseSearchSelector(group_size=64).select(x)) - x) ** 2
        )
        int_err = np.mean((IntType(4).qdq(x) - x) ** 2)
        assert cluster_err < mant_err < int_err

    def test_exact_when_few_distinct_values(self):
        x = np.tile(np.array([[-1.0, 0.0, 2.0, 5.0]]), (1, 16))
        cq = PerGroupClusterQuantizer(bits=4, group_size=64)
        assert np.allclose(cq.qdq(x), x)

    def test_codebook_overhead(self):
        cq = PerGroupClusterQuantizer(bits=4, group_size=64)
        assert cq.codebook_bits_per_element() == pytest.approx(2.0)
