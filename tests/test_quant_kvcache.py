"""Tests for the real-time KV-cache quantizers (paper Sec. V-C, Fig. 8)."""

import numpy as np
import pytest

from repro.quant.config import KVCacheConfig, QuantConfig
from repro.quant.kvcache import (
    FP16KVCache,
    IntKVCache,
    MantKVCache,
    make_kv_cache,
)


def fill(cache, heads=2, seq=70, dh=64, extra=70, seed=0):
    rng = np.random.default_rng(seed)
    k = rng.normal(size=(heads, seq, dh))
    v = rng.normal(size=(heads, seq, dh))
    cache.prefill(k, v)
    for _ in range(extra):
        cache.append(rng.normal(size=(heads, dh)), rng.normal(size=(heads, dh)))
    return k, v


class TestFP16Cache:
    def test_exact_passthrough(self):
        cache = FP16KVCache()
        k, v = fill(cache, extra=3)
        assert cache.keys().shape == (2, 73, 64)
        assert np.allclose(cache.keys()[:, :70], k)
        assert np.allclose(cache.values()[:, :70], v)

    def test_seq_len(self):
        cache = FP16KVCache()
        fill(cache, extra=5)
        assert cache.seq_len == 75


class TestIntCache:
    def test_shapes(self):
        cache = IntKVCache(bits=4, group_size=64)
        fill(cache)
        assert cache.keys().shape == (2, 140, 64)

    def test_error_bounded(self):
        cache = IntKVCache(bits=8, group_size=64)
        k, v = fill(cache, extra=0)
        err = np.max(np.abs(cache.keys() - k))
        assert err <= np.max(np.abs(k)) / 127 * 1.2

    def test_small_head_dim(self):
        cache = IntKVCache(bits=4, group_size=64)
        rng = np.random.default_rng(0)
        cache.prefill(rng.normal(size=(2, 10, 16)), rng.normal(size=(2, 10, 16)))
        assert cache.keys().shape == (2, 10, 16)


class TestMantCache:
    def test_shapes_and_growth(self):
        cache = MantKVCache(group_size=64)
        fill(cache, seq=70, extra=70)
        assert cache.keys().shape == (2, 140, 64)
        assert cache.values().shape == (2, 140, 64)
        assert cache.seq_len == 140

    def test_two_phase_window_flush(self):
        cache = MantKVCache(group_size=64, window=64)
        rng = np.random.default_rng(1)
        cache.prefill(rng.normal(size=(2, 64, 32)), rng.normal(size=(2, 64, 32)))
        assert cache.staging_fill == 0  # prefill seq = exact window
        for t in range(63):
            cache.append(rng.normal(size=(2, 32)), rng.normal(size=(2, 32)))
        assert cache.staging_fill == 63
        cache.append(rng.normal(size=(2, 32)), rng.normal(size=(2, 32)))
        assert cache.staging_fill == 0  # window closed and finalised

    def test_prefill_remainder_staged(self):
        cache = MantKVCache(group_size=64, window=64)
        rng = np.random.default_rng(2)
        cache.prefill(rng.normal(size=(1, 100, 32)), rng.normal(size=(1, 100, 32)))
        assert cache.staging_fill == 36

    def test_values_reasonably_accurate(self):
        # With a calibrated variance selector (the deployment mode),
        # 4-bit MANT lands near the MSE-search optimum (~1% rel MSE).
        from repro.core.selection import VarianceSelector

        rng = np.random.default_rng(42)
        sel = VarianceSelector(group_size=64).fit(rng.normal(size=(500, 64)))
        cache = MantKVCache(selector=sel, group_size=64)
        k, v = fill(cache, extra=0, seq=128)
        rel = np.mean((cache.values() - v) ** 2) / np.mean(v * v)
        assert rel < 0.015

    def test_unfitted_selector_still_usable(self):
        cache = MantKVCache(group_size=64)
        k, v = fill(cache, extra=0, seq=128)
        rel = np.mean((cache.values() - v) ** 2) / np.mean(v * v)
        assert rel < 0.05  # theoretical ranges: degraded but sane

    def test_keys_better_than_int4(self):
        rng = np.random.default_rng(3)
        k = rng.normal(size=(2, 64, 64))
        # Outlier channel in K (what the Q/K injection produces).
        k[:, :, 3] *= 16
        v = rng.normal(size=(2, 64, 64))
        mant = MantKVCache(group_size=64)
        mant.prefill(k, v)
        intc = IntKVCache(bits=4, group_size=64)
        intc.prefill(k, v)
        mant_err = np.mean((mant.keys() - k) ** 2)
        int_err = np.mean((intc.keys() - k) ** 2)
        assert mant_err <= int_err * 1.05

    def test_decode_without_prefill(self):
        cache = MantKVCache(group_size=8, window=8)
        rng = np.random.default_rng(4)
        for _ in range(10):
            cache.append(rng.normal(size=(1, 8)), rng.normal(size=(1, 8)))
        assert cache.seq_len == 10
        assert cache.values().shape == (1, 10, 8)

    def test_staging_is_int8_quality(self):
        # Values still in the staging window carry INT8 error, not 4-bit.
        cache = MantKVCache(group_size=64, window=64)
        rng = np.random.default_rng(5)
        cache.prefill(rng.normal(size=(1, 64, 16)), rng.normal(size=(1, 64, 16)))
        v_t = rng.normal(size=(1, 16))
        cache.append(rng.normal(size=(1, 16)), v_t)
        staged = cache.values()[:, -1, :]
        rel = np.abs(staged - v_t) / (np.abs(v_t) + 1e-9)
        assert np.median(rel) < 0.1


class TestAppendValidation:
    """Shape drift must fail loudly at append, not as a buffer error."""

    CACHES = {
        "fp16": lambda: FP16KVCache(),
        "int4": lambda: IntKVCache(bits=4, group_size=16),
        "mant4": lambda: MantKVCache(group_size=16, window=16),
    }

    @pytest.mark.parametrize("name", list(CACHES))
    def test_head_dim_drift_rejected(self, name):
        cache = self.CACHES[name]()
        rng = np.random.default_rng(0)
        cache.append(rng.normal(size=(2, 16)), rng.normal(size=(2, 16)))
        with pytest.raises(ValueError, match=r"\(n_heads, d_head\)"):
            cache.append(rng.normal(size=(2, 8)), rng.normal(size=(2, 8)))

    @pytest.mark.parametrize("name", list(CACHES))
    def test_head_count_drift_rejected(self, name):
        cache = self.CACHES[name]()
        rng = np.random.default_rng(1)
        cache.prefill(rng.normal(size=(2, 16, 16)), rng.normal(size=(2, 16, 16)))
        with pytest.raises(ValueError, match=r"\(n_heads, d_head\)"):
            cache.append(rng.normal(size=(4, 16)), rng.normal(size=(4, 16)))

    @pytest.mark.parametrize("name", list(CACHES))
    def test_v_mismatching_k_rejected(self, name):
        cache = self.CACHES[name]()
        rng = np.random.default_rng(2)
        cache.prefill(rng.normal(size=(2, 16, 16)), rng.normal(size=(2, 16, 16)))
        with pytest.raises(ValueError, match="v_t"):
            cache.append(rng.normal(size=(2, 16)), rng.normal(size=(2, 8)))

    def test_non_2d_token_rejected(self):
        cache = FP16KVCache()
        with pytest.raises(ValueError, match="one token"):
            cache.append(np.zeros((2, 3, 16)), np.zeros((2, 3, 16)))

    def test_matching_append_still_works(self):
        cache = MantKVCache(group_size=16, window=16)
        rng = np.random.default_rng(3)
        cache.prefill(rng.normal(size=(2, 16, 16)), rng.normal(size=(2, 16, 16)))
        cache.append(rng.normal(size=(2, 16)), rng.normal(size=(2, 16)))
        assert cache.seq_len == 17


class TestFactory:
    def test_fp16(self):
        assert isinstance(make_kv_cache(KVCacheConfig(
            key=QuantConfig(bits=16, method="fp16"),
            value=QuantConfig(bits=16, method="fp16"))), FP16KVCache)

    def test_mant(self):
        cfg = KVCacheConfig()
        assert isinstance(make_kv_cache(cfg), MantKVCache)

    def test_int(self):
        cfg = KVCacheConfig(
            key=QuantConfig(bits=4, method="int"),
            value=QuantConfig(bits=4, method="int"),
        )
        assert isinstance(make_kv_cache(cfg), IntKVCache)

    def test_unknown_rejected(self):
        cfg = KVCacheConfig(
            key=QuantConfig(bits=4, method="nf"),
            value=QuantConfig(bits=4, method="nf"),
        )
        with pytest.raises(ValueError):
            make_kv_cache(cfg)
