"""Tests for the pooled KV-cache arena (repro.quant.kvcache.KVCacheArena)."""

import functools

import numpy as np
import pytest

from repro.quant.kvcache import (
    FP16KVCache,
    IntKVCache,
    KVCacheArena,
    KVCache,
    MantKVCache,
    SlabTokenBuffer,
    TokenBuffer,
)

FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}


def drive(cache, rng, heads=2, seq=20, dh=16, extra=12, scale=1.0):
    k = rng.normal(size=(heads, seq, dh)) * scale
    v = rng.normal(size=(heads, seq, dh)) * scale
    cache.prefill(k, v)
    for _ in range(extra):
        cache.append(rng.normal(size=(heads, dh)) * scale,
                     rng.normal(size=(heads, dh)) * scale)


class TestArenaEquivalence:
    @pytest.mark.parametrize("name", list(FACTORIES))
    def test_pooled_cache_matches_standalone(self, name):
        """An arena-backed cache is bit-identical to a private one."""
        factory = FACTORIES[name]
        arena = KVCacheArena(n_layers=2, cache_factory=factory, slots=3,
                             initial_capacity=8)
        lease_a, lease_b = arena.acquire(), arena.acquire()
        solo = factory()
        # Same stream into solo and lease_a; a different stream into
        # lease_b to prove slots don't bleed into each other.
        drive(solo, np.random.default_rng(0))
        drive(lease_a.caches[0], np.random.default_rng(0))
        drive(lease_b.caches[0], np.random.default_rng(1), scale=3.0)
        assert np.array_equal(solo.keys(), lease_a.caches[0].keys())
        assert np.array_equal(solo.values(), lease_a.caches[0].values())
        assert lease_a.caches[0].seq_len == solo.seq_len

    def test_growth_past_initial_capacity(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=2,
                             initial_capacity=4)
        l1, l2 = arena.acquire(), arena.acquire()
        drive(l1.caches[0], np.random.default_rng(0), seq=8, extra=40)
        drive(l2.caches[0], np.random.default_rng(1), seq=8, extra=2)
        assert l1.caches[0].seq_len == 48
        assert l2.caches[0].seq_len == 10


class TestSlotLifecycle:
    def test_exhaustion_raises(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=1)
        arena.acquire()
        with pytest.raises(RuntimeError, match="exhausted"):
            arena.acquire()

    def test_release_recycles_slot(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=1)
        lease = arena.acquire()
        drive(lease.caches[0], np.random.default_rng(0))
        arena.release(lease)
        assert arena.slots_free == 1
        fresh = arena.acquire()
        assert fresh.slot == lease.slot
        assert fresh.caches[0].seq_len == 0          # recycled slot starts empty
        drive(fresh.caches[0], np.random.default_rng(2))
        solo = FP16KVCache()
        drive(solo, np.random.default_rng(2))
        assert np.array_equal(solo.keys(), fresh.caches[0].keys())

    def test_double_release_rejected(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=1)
        lease = arena.acquire()
        arena.release(lease)
        with pytest.raises(RuntimeError, match="already released"):
            arena.release(lease)

    def test_high_water_and_lease_count(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=4)
        l1, l2 = arena.acquire(), arena.acquire()
        arena.release(l1)
        arena.acquire()
        assert arena.high_water == 2
        assert arena.total_leases == 3

    def test_geometry_mismatch_rejected(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=2)
        l1, l2 = arena.acquire(), arena.acquire()
        rng = np.random.default_rng(0)
        l1.caches[0].prefill(rng.normal(size=(2, 4, 16)), rng.normal(size=(2, 4, 16)))
        with pytest.raises(ValueError, match="geometry"):
            l2.caches[0].prefill(rng.normal(size=(4, 4, 8)), rng.normal(size=(4, 4, 8)))

    def test_rebind_on_live_cache_rejected(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=1)
        lease = arena.acquire()
        drive(lease.caches[0], np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="rebind"):
            lease.caches[0].bind_buffer_factory(lambda *a: None)

    def test_non_buffered_cache_rejected(self):
        class Odd(KVCache):
            pass

        arena = KVCacheArena(n_layers=1, cache_factory=Odd, slots=1)
        with pytest.raises(TypeError, match="pooled buffer"):
            arena.acquire()


class TestSlabBuffer:
    def test_views_are_read_only(self):
        arena = KVCacheArena(n_layers=1, cache_factory=FP16KVCache, slots=1)
        lease = arena.acquire()
        drive(lease.caches[0], np.random.default_rng(0))
        view = lease.caches[0].keys()
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0

    def test_slab_token_buffer_matches_token_buffer(self):
        from repro.quant.kvcache import _ArenaSlab

        rng = np.random.default_rng(0)
        plain = TokenBuffer(2, 8, capacity=4)
        slab = SlabTokenBuffer(_ArenaSlab(3, 2, 8, capacity=4), slot=1)
        for _ in range(10):
            block = rng.normal(size=(2, 8))
            plain.append(block)
            slab.append(block)
        assert len(plain) == len(slab) == 10
        assert np.array_equal(plain.view(), slab.view())
        assert np.array_equal(plain.tail(3), slab.tail(3))
        assert (plain.heads, plain.d_head) == (slab.heads, slab.d_head)
