"""Tests for the MANT weight-quantization framework."""

import numpy as np
import pytest

from repro.core.codec import INT_A
from repro.quant.mant_framework import MantModelQuantizer, MantQuantizer


class TestMantQuantizer:
    def test_qdq_improves_over_worst_choice(self, rng):
        q = MantQuantizer(group_size=64)
        w = rng.normal(size=(16, 128))
        searched = q.qdq(w)
        from repro.core.codec import MantCodec

        codec = MantCodec(group_size=64)
        forced_pot = codec.qdq(w, np.zeros((16, 2)))
        assert np.mean((searched - w) ** 2) <= np.mean((forced_pot - w) ** 2)

    def test_qdq_tensor_axes(self, rng):
        q = MantQuantizer(group_size=32)
        x = rng.normal(size=(3, 5, 64))
        out = q.qdq_tensor(x, axis=-1)
        assert out.shape == x.shape
        out0 = q.qdq_tensor(x, axis=0)
        assert out0.shape == x.shape

    def test_encode_decode_roundtrip(self, rng):
        q = MantQuantizer(group_size=64, fp16_scales=False)
        w = rng.normal(size=(8, 128))
        enc = q.encode(w)
        assert np.allclose(q.dequantize(enc), q.qdq(w))

    def test_calibrated_selection_accepts_stats(self, rng):
        q = MantQuantizer(group_size=64)
        w = rng.normal(size=(8, 128))
        h = np.abs(rng.normal(size=128)) + 0.1
        out = q.qdq(w, act_sq_mean=h)
        assert out.shape == w.shape


class TestMantModelQuantizer:
    def test_quantize_collection(self, rng):
        mq = MantModelQuantizer(group_size=64)
        weights = {
            "a": rng.normal(size=(8, 128)),
            "b": rng.normal(size=(4, 64)),
        }
        out = mq.quantize_weights(weights)
        assert set(out) == {"a", "b"}
        assert "a" in mq.results

    def test_histogram_fractions(self, rng):
        mq = MantModelQuantizer(group_size=64)
        mq.quantize_weights({"w": rng.normal(size=(16, 256))})
        hist = mq.datatype_ratio_table()["w"]
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_int_fraction_range(self, rng):
        mq = MantModelQuantizer(group_size=64)
        mq.quantize_weights({"w": rng.uniform(-1, 1, size=(16, 256))})
        f = mq.int_fraction()
        assert 0.0 <= f <= 1.0

    def test_uniform_weights_pick_int_often(self, rng):
        # Uniform groups should mostly select INT or very large a.
        mq = MantModelQuantizer(group_size=64)
        mq.quantize_weights({"w": rng.uniform(-1, 1, size=(32, 256))})
        hist = mq.datatype_ratio_table()["w"]
        uniform_like = sum(
            frac for a, frac in hist.items() if a == INT_A or a >= 80
        )
        assert uniform_like > 0.9
