"""Tests for the generic granularity quantizers."""

import numpy as np
import pytest

from repro.datatypes.int_type import IntType
from repro.quant.config import Granularity, QuantConfig
from repro.quant.quantizer import GroupQuantizer, qdq_with_config, quantize_dequantize


class TestGroupQuantizer:
    def test_tensor_granularity_single_scale(self, rng):
        x = rng.normal(size=(4, 64))
        q = GroupQuantizer(IntType(8), Granularity.TENSOR, fp16_scales=False)
        out = q.qdq(x)
        scale = np.max(np.abs(x)) / 127
        assert np.allclose(out / scale, np.rint(out / scale), atol=1e-6)

    def test_channel_beats_tensor_on_scaled_channels(self, rng):
        # One hot channel stretches a tensor-wise scale; channel-wise
        # scales are immune — the motivation for channel quantization.
        x = rng.normal(size=(64, 32))
        x[:, 0] *= 100
        t_err = np.mean((quantize_dequantize(x, IntType(4), Granularity.TENSOR) - x) ** 2)
        c_err = np.mean(
            (quantize_dequantize(x, IntType(4), Granularity.CHANNEL, axis=0) - x) ** 2
        )
        assert c_err < t_err

    def test_group_beats_channel_on_heterogeneous_groups(self, rng):
        # Fig. 1's premise: magnitude varies along the channel.
        x = rng.normal(size=(2, 256))
        x[:, :64] *= 50
        c_err = np.mean(
            (quantize_dequantize(x, IntType(4), Granularity.CHANNEL) - x) ** 2
        )
        g_err = np.mean(
            (quantize_dequantize(x, IntType(4), Granularity.GROUP, 64) - x) ** 2
        )
        assert g_err < c_err

    def test_group_axis0(self, rng):
        x = rng.normal(size=(128, 3))
        out = GroupQuantizer(IntType(4), Granularity.GROUP, 64).qdq(x, axis=0)
        assert out.shape == x.shape

    def test_zero_tensor(self):
        out = GroupQuantizer(IntType(4), Granularity.GROUP, 64).qdq(np.zeros((2, 64)))
        assert np.all(out == 0)


class TestConfigDispatch:
    @pytest.mark.parametrize(
        "method", ["int", "mant", "ant", "olive", "tender", "cluster", "nf", "fp", "pot", "flint"]
    )
    def test_all_methods_run(self, rng, method):
        x = rng.normal(size=(4, 128))
        cfg = QuantConfig(bits=4, method=method, group_size=64)
        out = qdq_with_config(x, cfg)
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))
        assert np.mean((out - x) ** 2) < np.mean(x * x)  # better than zeroing

    def test_mxfp_dispatch(self, rng):
        x = rng.normal(size=(4, 64))
        out = qdq_with_config(x, QuantConfig(bits=4, method="mxfp", group_size=32))
        assert out.shape == x.shape

    def test_fp16_dispatch_near_identity(self, rng):
        x = rng.normal(size=(4, 64))
        out = qdq_with_config(x, QuantConfig(bits=16, method="fp16"))
        assert np.allclose(out, x, atol=1e-3)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            qdq_with_config(rng.normal(size=(2, 64)), QuantConfig(bits=4, method="nope"))


class TestQuantConfig:
    def test_bits_validated(self):
        with pytest.raises(ValueError):
            QuantConfig(bits=5)

    def test_storage_format_mant(self):
        cfg = QuantConfig(bits=4, method="mant", group_size=64)
        assert cfg.bits_per_element() == pytest.approx(4 + 24 / 64)

    def test_storage_format_cluster_codebook(self):
        # Sec. III-B: 16-entry codebook at 8 bits = 128 bits/group,
        # "effectively 6-bit" at group 64... at group 32 it is +4 bits.
        cfg = QuantConfig(bits=4, method="cluster", group_size=64)
        assert cfg.bits_per_element() == pytest.approx(4 + (16 + 128) / 64)

    def test_fp16_is_16_bits(self):
        assert QuantConfig(bits=16, method="fp16").bits_per_element() == 16.0

    def test_mxfp_scale_is_8bit(self):
        cfg = QuantConfig(bits=4, method="mxfp", group_size=32)
        assert cfg.bits_per_element() == pytest.approx(4 + 8 / 32)
