"""Tests for the chunked, batched prefill pipeline (mixed ticks).

The load-bearing properties:

* chunked greedy engine output is token-for-token identical to the
  unchunked engine for every KV-cache type, over both storage backends,
  with and without prefix sharing;
* cache-level ``prefill_chunk`` is *bitwise* identical to one-shot
  ``prefill`` on the same raw tensors (chunk boundaries land on
  quantization-window boundaries, and the INT8 staging scales are fixed
  from channel maxima accumulated across chunks);
* seeded sampling is invariant to the chunk-budget composition of the
  ticks a request rides;
* preemption of a half-prefilled sequence resets its chunk cursor so
  recompute-on-resume replays the whole prompt;
* prefix-aware admission charges only the pages a prefix-cache match
  won't cover;
* bad chunk configurations are rejected loudly.
"""

import functools
import math

import numpy as np
import pytest

from repro.model.transformer import MixedSegment, ModelConfig, TransformerLM
from repro.quant.kvcache import (
    FP16KVCache,
    IntKVCache,
    MantKVCache,
    validate_chunk_compat,
)
from repro.sampling import SamplingParams
from repro.serve import (
    GenerationEngine,
    GenerationRequest,
    PrefillCursor,
    ServeConfig,
)

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=256, seed=5)
    return TransformerLM(cfg)


@pytest.fixture(scope="module")
def opt_model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=256, arch="opt", seed=6)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=20, hi=70):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi))) for _ in range(n)]


def requests(ps, max_tokens=8):
    return [GenerationRequest(f"r{i}", p, max_tokens=max_tokens)
            for i, p in enumerate(ps)]


# ======================================================================
# Cache level: prefill_chunk is bitwise prefill
# ======================================================================
class TestCacheChunkBitIdentity:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    @pytest.mark.parametrize("seq", [7, 16, 40, 50, 64])
    def test_chunked_prefill_bitwise_equals_whole(self, cache_name, seq):
        rng = np.random.default_rng(seq)
        k = rng.standard_normal((2, seq, 16))
        v = rng.standard_normal((2, seq, 16))
        ref = CACHE_FACTORIES[cache_name]()
        ref.prefill(k, v)
        chunked = CACHE_FACTORIES[cache_name]()
        off = 0
        while off < seq:
            n = min(16, seq - off)
            chunked.prefill_chunk(k[:, off:off + n], v[:, off:off + n],
                                  final=off + n == seq)
            off += n
        assert np.array_equal(ref.keys(), chunked.keys())
        assert np.array_equal(ref.values(), chunked.values())
        assert ref.seq_len == chunked.seq_len

    def test_mant_staging_state_matches_whole_prefill(self):
        """Scales and accumulators — not just contents — must converge,
        or the first decode append after a chunked prefill diverges."""
        rng = np.random.default_rng(3)
        k = rng.standard_normal((2, 40, 16))
        v = rng.standard_normal((2, 40, 16))
        ref = CACHE_FACTORIES["mant4"]()
        ref.prefill(k, v)
        chunked = CACHE_FACTORIES["mant4"]()
        for off in (0, 16, 32):
            n = min(16, 40 - off)
            chunked.prefill_chunk(k[:, off:off + n], v[:, off:off + n],
                                  final=off + n == 40)
        assert np.array_equal(ref._stage_scale, chunked._stage_scale)
        assert ref.staging_fill == chunked.staging_fill == 40 % 16
        for attr in ("_acc_sum", "_acc_sqsum", "_acc_max"):
            assert np.array_equal(getattr(ref, attr), getattr(chunked, attr))
        # One decode append stays bitwise identical too.
        k_t, v_t = rng.standard_normal((2, 16)), rng.standard_normal((2, 16))
        ref.append(k_t, v_t)
        chunked.append(k_t, v_t)
        assert np.array_equal(ref.values(), chunked.values())

    def test_non_window_aligned_intermediate_chunk_rejected(self):
        cache = CACHE_FACTORIES["mant4"]()
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError, match="non-final prefill chunk"):
            cache.prefill_chunk(rng.standard_normal((2, 10, 16)),
                                rng.standard_normal((2, 10, 16)), final=False)

    def test_decode_append_before_final_chunk_rejected(self):
        cache = CACHE_FACTORIES["mant4"]()
        rng = np.random.default_rng(5)
        cache.prefill_chunk(rng.standard_normal((2, 16, 16)),
                            rng.standard_normal((2, 16, 16)), final=False)
        with pytest.raises(RuntimeError, match="unfinished chunked prefill"):
            cache.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))

    def test_validate_chunk_compat(self):
        validate_chunk_compat(FP16KVCache(), 10)          # any size fine
        validate_chunk_compat(CACHE_FACTORIES["mant4"](), 32)
        with pytest.raises(ValueError, match="multiple of"):
            validate_chunk_compat(CACHE_FACTORIES["mant4"](), 24)


# ======================================================================
# Model level: prefill_chunk / forward_mixed
# ======================================================================
class TestModelMixedForward:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_chunked_prefill_then_greedy_matches(self, model, cache_name):
        factory = CACHE_FACTORIES[cache_name]
        prompt = prompts(1, seed=7, lo=45, hi=46)[0]
        ref = [factory() for _ in range(model.config.n_layers)]
        ref_logits = model.prefill(prompt, ref)
        ch = [factory() for _ in range(model.config.n_layers)]
        out = None
        for off in range(0, prompt.size, 16):
            n = min(16, prompt.size - off)
            out = model.prefill_chunk(prompt[off:off + n], ch, offset=off,
                                      final=off + n == prompt.size)
        t_ref, t_ch = int(np.argmax(ref_logits)), int(np.argmax(out))
        pos, toks_ref, toks_ch = prompt.size, [], []
        for _ in range(10):
            toks_ref.append(t_ref)
            toks_ch.append(t_ch)
            t_ref = int(np.argmax(model.decode_step(t_ref, ref, pos)))
            t_ch = int(np.argmax(model.decode_step(t_ch, ch, pos)))
            pos += 1
        assert toks_ref == toks_ch

    def test_non_final_chunk_returns_none(self, model):
        caches = [FP16KVCache() for _ in range(model.config.n_layers)]
        prompt = prompts(1, seed=8, lo=32, hi=33)[0]
        assert model.prefill_chunk(prompt[:16], caches, offset=0) is None
        out = model.prefill_chunk(prompt[16:], caches, offset=16, final=True)
        assert out is not None and out.shape == (VOCAB,)

    def test_mixed_decode_rows_match_decode_step_batch_tokens(self, model):
        """Decode rows packed with a chunk still sample the same tokens."""
        ps = prompts(3, seed=9)
        caches, toks, poss = [], [], []
        for p in ps:
            cs = [FP16KVCache() for _ in range(model.config.n_layers)]
            toks.append(int(np.argmax(model.prefill(p, cs))))
            caches.append(cs)
            poss.append(len(p))
        ref = model.decode_step_batch(toks, [list(c) for c in caches], poss)
        # Fresh caches, same state, but ride a mixed forward with a chunk.
        caches2 = []
        for p in ps:
            cs = [FP16KVCache() for _ in range(model.config.n_layers)]
            model.prefill(p, cs)
            caches2.append(cs)
        newcomer = [FP16KVCache() for _ in range(model.config.n_layers)]
        segs = [MixedSegment([t], c, pos, MixedSegment.DECODE)
                for t, c, pos in zip(toks, caches2, poss)]
        segs.append(MixedSegment(prompts(1, seed=10)[0][:16], newcomer, 0,
                                 MixedSegment.CHUNK))
        outs = model.forward_mixed(segs)
        assert outs[-1] is None
        for b in range(3):
            assert int(np.argmax(outs[b])) == int(np.argmax(ref[b]))

    def test_segment_validation(self, model):
        caches = [FP16KVCache()]
        with pytest.raises(ValueError, match="non-empty 1-D"):
            MixedSegment(np.array([], dtype=np.int64), caches, 0, MixedSegment.CHUNK)
        with pytest.raises(ValueError, match="exactly one token"):
            MixedSegment([1, 2], caches, 0, MixedSegment.DECODE)
        with pytest.raises(ValueError, match="unknown segment kind"):
            MixedSegment([1], caches, 0, "bogus")
        assert model.forward_mixed([]) == []


# ======================================================================
# Engine level: the acceptance criterion
# ======================================================================
class TestChunkedEngineEquivalence:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    @pytest.mark.parametrize("backend", ["arena", "paged", "paged_shared"])
    def test_chunked_equals_unchunked(self, model, cache_name, backend):
        """Chunked greedy output == unchunked, token for token, for
        FP16/INT4/MANT4 over arena and paged (± prefix sharing)."""
        factory = CACHE_FACTORIES[cache_name]
        if backend == "paged_shared":
            rng = np.random.default_rng(11)
            system = rng.integers(0, VOCAB, size=32)
            ps = [np.concatenate([system, rng.integers(0, VOCAB, size=int(n))])
                  for n in rng.integers(4, 30, size=5)]
        else:
            ps = prompts(5, seed=12)
        base = dict(max_batch_size=3)
        if backend != "arena":
            base.update(paged=True, block_tokens=16,
                        enable_prefix_cache=backend == "paged_shared")
        ref = GenerationEngine(model, factory, ServeConfig(**base))
        chunked = GenerationEngine(model, factory, ServeConfig(
            **base, prefill_chunk_tokens=16, max_tokens_per_tick=32))
        rr = ref.generate(requests(ps))
        rc = chunked.generate(requests(ps))
        for i in range(len(ps)):
            assert rr[f"r{i}"].tokens == rc[f"r{i}"].tokens
        st = chunked.stats()
        assert st.prefill_chunks >= sum(-(-p.size // 16) for p in ps)

    def test_opt_arch_chunked_equals_unchunked(self, opt_model):
        ps = prompts(4, seed=13)
        ref = GenerationEngine(opt_model, FP16KVCache, ServeConfig(max_batch_size=4))
        chunked = GenerationEngine(opt_model, FP16KVCache, ServeConfig(
            max_batch_size=4, prefill_chunk_tokens=16, max_tokens_per_tick=24))
        rr = ref.generate(requests(ps, max_tokens=6))
        rc = chunked.generate(requests(ps, max_tokens=6))
        for i in range(len(ps)):
            assert rr[f"r{i}"].tokens == rc[f"r{i}"].tokens

    def test_seeded_sampling_invariant_to_chunk_budget(self, model):
        """Mixed-tick determinism: a request's sampled tokens must not
        depend on how the tick budget packed its peers' chunks."""
        sp = SamplingParams(temperature=0.8, top_k=16, seed=42)
        ps = prompts(4, seed=14, lo=40, hi=65)
        outs = []
        for cfg in (
            ServeConfig(max_batch_size=4, prefill_chunk_tokens=16,
                        max_tokens_per_tick=16),
            ServeConfig(max_batch_size=4, prefill_chunk_tokens=16,
                        max_tokens_per_tick=64),
            ServeConfig(max_batch_size=4, prefill_chunk_tokens=32),
            ServeConfig(max_batch_size=4),            # unchunked reference
        ):
            eng = GenerationEngine(model, FP16KVCache, cfg)
            res = eng.generate(
                [GenerationRequest(f"r{i}", p, max_tokens=8, sampling=sp)
                 for i, p in enumerate(ps)]
            )
            outs.append([res[f"r{i}"].tokens for i in range(len(ps))])
        for other in outs[1:]:
            assert other == outs[0]

    def test_budget_caps_tick_token_count(self, model):
        """No tick may run more prefill-chunk tokens than the budget
        leaves after its decode rows."""
        ps = prompts(4, seed=15, lo=60, hi=70)
        cfg = ServeConfig(max_batch_size=4, prefill_chunk_tokens=16,
                          max_tokens_per_tick=32)
        eng = GenerationEngine(model, FP16KVCache, cfg)
        for r in requests(ps, max_tokens=4):
            eng.submit(r)
        while eng.has_work():
            before = eng.scheduler.running
            decoding = sum(1 for s in before if s.cursor is None and not s.finished)
            chunks_before = eng.stats().prefill_chunks
            eng.step()
            chunk_tokens_possible = (eng.stats().prefill_chunks - chunks_before) * 16
            assert decoding + chunk_tokens_possible <= 32 + 16  # final chunk slack
        assert eng.stats().requests_completed == 4

    def test_long_prompt_does_not_stall_decoders(self, model):
        """The tentpole's latency property, counted in ticks: while a
        long prompt streams in chunk by chunk, already-running decodes
        emit a token every tick instead of gapping for a whole prefill."""
        short = prompts(2, seed=16, lo=4, hi=6)
        long_prompt = prompts(1, seed=17, lo=200, hi=201)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=3, prefill_chunk_tokens=16, max_tokens_per_tick=24))
        for r in requests(short, max_tokens=20):
            eng.submit(r)
        eng.step()                                   # shorts prefill+first token
        eng.submit(GenerationRequest("long", long_prompt, max_tokens=2))
        emitted = {"r0": 0, "r1": 0}
        ticks = 0
        while eng.has_work() and ticks < 12:
            evs = eng.step()
            ticks += 1
            for e in evs:
                if e.request_id in emitted and e.token is not None:
                    emitted[e.request_id] += 1
        # 12 ticks of chunked prefill never blocked the decoders.
        assert emitted["r0"] >= 10 and emitted["r1"] >= 10

    def test_ttft_and_itl_stats_recorded(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, prefill_chunk_tokens=16))
        res = eng.generate(requests(prompts(3, seed=18), max_tokens=5))
        st = eng.stats()
        assert st.ttft_p50_s > 0 and st.ttft_p95_s >= st.ttft_p50_s
        assert st.inter_token_p50_s > 0
        assert st.inter_token_p95_s >= st.inter_token_p50_s
        for r in res.values():
            assert r.ttft_s > 0
            assert r.prefill_chunks >= 1

    def test_stats_nan_before_any_token(self, model):
        eng = GenerationEngine(model, FP16KVCache)
        st = eng.stats()
        assert math.isnan(st.ttft_p50_s) and math.isnan(st.inter_token_p95_s)


# ======================================================================
# Preemption of half-prefilled sequences (satellite bugfix)
# ======================================================================
class TestChunkedPreemption:
    def _tight_engine(self, model, **over):
        cfg = dict(max_batch_size=2, paged=True, block_tokens=16, num_blocks=8,
                   enable_prefix_cache=False, prefill_chunk_tokens=16)
        cfg.update(over)
        return GenerationEngine(model, FP16KVCache, ServeConfig(**cfg))

    def test_mid_prefill_preemption_replays_whole_prompt(self, model):
        """A preempted half-prefilled sequence must reset its cursor and
        replay the full prompt on resume — resuming from a stale cursor
        into fresh pages would silently corrupt the cache."""
        rng = np.random.default_rng(19)
        a = rng.integers(0, VOCAB, size=24)          # decoder, grows
        b = rng.integers(0, VOCAB, size=96)          # long prompt, prefills last
        eng = self._tight_engine(model)
        eng.submit(GenerationRequest("a", a, max_tokens=40))
        eng.submit(GenerationRequest("b", b, max_tokens=2))
        while eng.has_work():
            eng.step()
        st = eng.stats()
        assert st.preemptions >= 1
        # The victim replayed from token zero: its total chunk count
        # exceeds one clean pass over the prompt.
        clean_pass = -(-96 // 16)
        res_b = eng.result("b")
        assert res_b.prefill_chunks > clean_pass
        # And the output still matches an unpressured engine's.
        ref = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        rr = ref.generate([GenerationRequest("a", a, max_tokens=40),
                           GenerationRequest("b", b, max_tokens=2)])
        assert rr["b"].tokens == res_b.tokens
        assert rr["a"].tokens == eng.result("a").tokens

    def test_preempted_decoder_still_resumes_exactly_once(self, model):
        """Decode-phase preemption keeps PR 3 semantics under chunking:
        emitted tokens are not re-emitted after recompute."""
        rng = np.random.default_rng(20)
        reqs = [GenerationRequest(f"r{i}", rng.integers(0, VOCAB, size=8),
                                  max_tokens=12) for i in range(2)]
        eng = self._tight_engine(model, block_tokens=8, num_blocks=4)
        res = eng.generate(reqs)
        assert eng.stats().preemptions >= 1
        for rid, r in res.items():
            assert len(r.tokens) == 12
            assert len(set(range(len(r.tokens)))) == 12
        assert eng.pool.blocks_in_use == 0

    def test_admission_charges_pending_prefill_demand(self, model):
        """Chunked admission writes no pages, so the gauge alone cannot
        see earlier admissions — their outstanding prefill pages must be
        charged, or a burst of long prompts over-commits the pool and
        churns through preemptions, replaying completed prefill work."""
        rng = np.random.default_rng(25)
        ps = [rng.integers(0, VOCAB, size=96) for _ in range(4)]   # 6 pages each
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16, num_blocks=8,
            enable_prefix_cache=False, prefill_chunk_tokens=16))
        res = eng.generate(requests(ps, max_tokens=4))
        st = eng.stats()
        assert st.requests_completed == 4
        assert st.preemptions == 0
        assert st.prefill_chunks == 4 * (96 // 16)   # no replayed chunks
        ref = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=4))
        rr = ref.generate(requests(ps, max_tokens=4))
        for i in range(4):
            assert rr[f"r{i}"].tokens == res[f"r{i}"].tokens

    def test_cursor_api(self):
        c = PrefillCursor(40)
        assert c.remaining == 40 and not c.complete
        c.advance(16)
        c.advance(24)
        assert c.complete
        with pytest.raises(ValueError):
            c.advance(1)
        with pytest.raises(ValueError):
            PrefillCursor(0)


# ======================================================================
# Prefix-aware admission (satellite)
# ======================================================================
class TestPrefixAwareAdmission:
    def test_shared_prompt_admits_earlier_than_cold(self, model):
        """With a live donor, a same-prompt request's matched pages are
        not charged against the free-block gauge."""
        rng = np.random.default_rng(21)
        prompt = rng.integers(0, VOCAB, size=32)     # 2 pages at bt=16
        cold = rng.integers(0, VOCAB, size=32)
        cfg = dict(max_batch_size=2, paged=True, block_tokens=16, num_blocks=4)
        warm = GenerationEngine(model, FP16KVCache, ServeConfig(**cfg))
        warm.submit(GenerationRequest("a", prompt, max_tokens=6))
        warm.submit(GenerationRequest("b", prompt, max_tokens=6))
        warm.step()
        # a holds 2 prompt pages + 1 decode page; b's 2 pages are fully
        # covered by a's live registered pages -> admitted same tick.
        assert warm.scheduler.n_running == 2
        res = warm.generate()
        assert res["a"].tokens == res["b"].tokens
        # The cold twin of the same shape must wait (charged 2 pages).
        coldeng = GenerationEngine(model, FP16KVCache, ServeConfig(**cfg))
        coldeng.submit(GenerationRequest("a", prompt, max_tokens=6))
        coldeng.submit(GenerationRequest("b", cold, max_tokens=6))
        coldeng.step()
        assert coldeng.scheduler.n_running == 1
        assert coldeng.scheduler.queue_depth == 1
        coldeng.generate()                            # still completes FCFS

    def test_probe_counts_only_live_blocks(self, model):
        """Cached-free (evictable) matches keep being charged: attaching
        them consumes a block the gauge counts as available."""
        rng = np.random.default_rng(22)
        prompt = rng.integers(0, VOCAB, size=32)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=1, paged=True, block_tokens=16, num_blocks=6))
        eng.generate([GenerationRequest("a", prompt, max_tokens=4)])
        pool = eng.pool
        assert pool.probe_prefix(prompt) == 0        # donor gone: pages cached-free
        eng.submit(GenerationRequest("b", prompt, max_tokens=4))
        eng.step()
        assert pool.probe_prefix(prompt) == 2        # b holds them live
        eng.generate()

    def test_probe_disabled_without_prefix_cache(self, model):
        rng = np.random.default_rng(23)
        prompt = rng.integers(0, VOCAB, size=32)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=16, num_blocks=6,
            enable_prefix_cache=False))
        eng.generate([GenerationRequest("a", prompt, max_tokens=4)])
        assert eng.pool.probe_prefix(prompt) == 0


# ======================================================================
# Config validation (satellite)
# ======================================================================
class TestChunkConfigValidation:
    @pytest.mark.parametrize("kwargs,match", [
        ({"prefill_chunk_tokens": 0}, "prefill_chunk_tokens"),
        ({"max_tokens_per_tick": 32}, "requires prefill_chunk_tokens"),
        ({"prefill_chunk_tokens": 32, "max_tokens_per_tick": 16},
         "max_tokens_per_tick"),
        ({"paged": True, "block_tokens": 16, "prefill_chunk_tokens": 24},
         "multiple of block_tokens"),
    ])
    def test_bad_chunk_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServeConfig(**kwargs)

    def test_window_straddling_chunk_rejected_at_engine_init(self, model):
        with pytest.raises(ValueError, match="multiple of"):
            GenerationEngine(model, CACHE_FACTORIES["mant4"], ServeConfig(
                prefill_chunk_tokens=24))

    def test_valid_chunk_config_accepted(self, model):
        cfg = ServeConfig(paged=True, block_tokens=16, prefill_chunk_tokens=32,
                          max_tokens_per_tick=64)
        eng = GenerationEngine(model, CACHE_FACTORIES["mant4"], cfg)
        res = eng.generate(requests(prompts(2, seed=24), max_tokens=3))
        assert len(res) == 2
