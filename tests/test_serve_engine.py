"""Tests for the continuous-batching engine (repro.serve.engine).

The load-bearing property: greedy engine output is token-for-token
identical to the single-stream ``prefill``/``decode_step`` loop for
every KV-cache type, regardless of batch composition.
"""

import functools

import numpy as np
import pytest

from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationEngine,
    GenerationRequest,
    QueueFullError,
    SamplingParams,
    ServeConfig,
)

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=128, seed=5)
    return TransformerLM(cfg)


@pytest.fixture(scope="module")
def opt_model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=128, arch="opt", seed=6)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi))) for _ in range(n)]


def single_stream(model, cache_factory, prompt, n_tokens):
    """The pre-serving generation loop (mirrors model/tasks._generate)."""
    caches = [cache_factory() for _ in range(model.config.n_layers)]
    logits = model.prefill(prompt, caches)
    out, pos, token = [], len(prompt), int(np.argmax(logits))
    for _ in range(n_tokens):
        out.append(token)
        logits = model.decode_step(token, caches, pos)
        token = int(np.argmax(logits))
        pos += 1
    return out


# ======================================================================
# Batched-vs-single equivalence (the acceptance criterion)
# ======================================================================
class TestGreedyEquivalence:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_batched_equals_single_stream(self, model, cache_name):
        factory = CACHE_FACTORIES[cache_name]
        ps = prompts(6, seed=3)
        engine = GenerationEngine(model, factory, ServeConfig(max_batch_size=3))
        results = engine.generate(
            [GenerationRequest(f"r{i}", p, max_tokens=8) for i, p in enumerate(ps)]
        )
        for i, p in enumerate(ps):
            assert results[f"r{i}"].tokens == single_stream(model, factory, p, 8)

    def test_opt_arch_equivalence(self, opt_model):
        ps = prompts(4, seed=4)
        engine = GenerationEngine(opt_model, FP16KVCache, ServeConfig(max_batch_size=4))
        results = engine.generate(
            [GenerationRequest(f"r{i}", p, max_tokens=6) for i, p in enumerate(ps)]
        )
        for i, p in enumerate(ps):
            assert results[f"r{i}"].tokens == single_stream(opt_model, FP16KVCache, p, 6)

    def test_decode_step_batch_bitwise(self, model):
        """Transformer-level: batched logits row == single-stream logits."""
        ps = prompts(3, seed=7)
        single_caches, batch_caches, toks, poss = [], [], [], []
        for p in ps:
            cs = [FP16KVCache() for _ in range(model.config.n_layers)]
            cb = [FP16KVCache() for _ in range(model.config.n_layers)]
            toks.append(int(np.argmax(model.prefill(p, cs))))
            model.prefill(p, cb)
            single_caches.append(cs)
            batch_caches.append(cb)
            poss.append(len(p))
        batched = model.decode_step_batch(toks, batch_caches, poss)
        for b, p in enumerate(ps):
            ref = model.decode_step(toks[b], single_caches[b], poss[b])
            assert np.array_equal(batched[b], ref)

    def test_act_quant_applied_per_sequence(self, model):
        """Tensor-granularity activation scales must not couple batch rows."""

        def tensor_act_quant(name, x):
            # Worst case for batching: one scale over the whole tensor.
            scale = np.max(np.abs(x)) / 127.0 or 1.0
            return np.round(x / scale) * scale

        ps = prompts(3, seed=21)
        single_caches, batch_caches, toks, poss = [], [], [], []
        for p in ps:
            cs = [FP16KVCache() for _ in range(model.config.n_layers)]
            cb = [FP16KVCache() for _ in range(model.config.n_layers)]
            toks.append(int(np.argmax(model.prefill(p, cs, act_quant=tensor_act_quant))))
            model.prefill(p, cb, act_quant=tensor_act_quant)
            single_caches.append(cs)
            batch_caches.append(cb)
            poss.append(len(p))
        batched = model.decode_step_batch(toks, batch_caches, poss,
                                          act_quant=tensor_act_quant)
        for b in range(len(ps)):
            ref = model.decode_step(toks[b], single_caches[b], poss[b],
                                    act_quant=tensor_act_quant)
            assert np.array_equal(batched[b], ref)

    def test_over_budget_request_rejected_not_wedged(self, model):
        """A request that can never fit must not stall the queue forever."""
        engine = GenerationEngine(
            model, FP16KVCache,
            ServeConfig(max_batch_size=4, max_tokens_in_flight=20),
        )
        good = prompts(2, seed=22, lo=4, hi=5)
        engine.submit(GenerationRequest("ok-0", good[0], max_tokens=4))
        with pytest.raises(ValueError, match="max_tokens_in_flight"):
            engine.submit(GenerationRequest("big", np.zeros(30, dtype=np.int64),
                                            max_tokens=4))
        engine.submit(GenerationRequest("ok-1", good[1], max_tokens=4))
        results = engine.generate()
        assert set(results) == {"ok-0", "ok-1"}
        # The rejected id was never registered, so it is reusable.
        engine.submit(GenerationRequest("big", good[0], max_tokens=4))
        while engine.has_work():
            engine.step()
        assert engine.result("big").finish_reason == FINISH_LENGTH

    def test_seeded_sampling_batch_invariant(self, model):
        """A request's sampled tokens must not depend on batch peers."""
        sp = SamplingParams(temperature=0.9, top_k=16, seed=11)
        p = prompts(1, seed=9)[0]
        solo = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=1))
        ref = solo.generate([GenerationRequest("x", p, max_tokens=10, sampling=sp)])
        others = prompts(3, seed=10)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=4))
        res = eng.generate(
            [GenerationRequest("x", p, max_tokens=10, sampling=sp)]
            + [GenerationRequest(f"o{i}", q, max_tokens=4) for i, q in enumerate(others)]
        )
        assert res["x"].tokens == ref["x"].tokens


# ======================================================================
# Scheduling edge cases
# ======================================================================
class TestSchedulingEdgeCases:
    def test_finish_mid_batch_admits_queued(self, model):
        """Short requests finishing mid-batch free lanes for queued ones."""
        ps = prompts(5, seed=12)
        lengths = [2, 9, 2, 5, 3]
        engine = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        results = engine.generate(
            [GenerationRequest(f"r{i}", p, max_tokens=n)
             for i, (p, n) in enumerate(zip(ps, lengths))]
        )
        assert len(results) == 5
        for i, (p, n) in enumerate(zip(ps, lengths)):
            assert results[f"r{i}"].tokens == single_stream(model, FP16KVCache, p, n)
            assert results[f"r{i}"].finish_reason == FINISH_LENGTH
        st = engine.stats()
        assert st.requests_completed == 5
        assert st.cache_slots_high_water <= 2
        assert engine.arena.total_leases == 5        # slots recycled
        assert engine.arena.slots_free == 2          # all returned

    def test_admission_while_full_queues(self, model):
        engine = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=1))
        for i, p in enumerate(prompts(3, seed=13)):
            engine.submit(GenerationRequest(f"r{i}", p, max_tokens=4))
        engine.step()
        assert engine.scheduler.n_running == 1
        assert engine.scheduler.queue_depth == 2
        while engine.has_work():
            engine.step()
        assert all(len(engine.result(f"r{i}").tokens) == 4 for i in range(3))

    def test_max_tokens_1_finishes_on_prefill(self, model):
        p = prompts(1, seed=14)[0]
        engine = GenerationEngine(model, FP16KVCache)
        res = engine.generate([GenerationRequest("r", p, max_tokens=1)])["r"]
        assert res.tokens == single_stream(model, FP16KVCache, p, 1)
        assert res.finish_reason == FINISH_LENGTH
        assert res.decode_steps == 0

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError, match="empty prompt"):
            GenerationRequest("r", np.array([], dtype=np.int64))

    def test_zero_max_tokens_rejected(self):
        with pytest.raises(ValueError, match="max_tokens"):
            GenerationRequest("r", np.arange(4), max_tokens=0)

    def test_stop_token_finishes_early(self, model):
        p = prompts(1, seed=15)[0]
        ref = single_stream(model, FP16KVCache, p, 8)
        stop = ref[3]
        engine = GenerationEngine(model, FP16KVCache)
        res = engine.generate(
            [GenerationRequest("r", p, max_tokens=8, stop_tokens={stop})]
        )["r"]
        assert res.finish_reason == FINISH_STOP
        assert res.tokens == ref[: ref.index(stop)]   # stop token not emitted

    def test_token_budget_respected(self, model):
        ps = prompts(4, seed=16, lo=6, hi=7)          # footprint 6 + 4 = 10 each
        engine = GenerationEngine(
            model, FP16KVCache,
            ServeConfig(max_batch_size=8, max_tokens_in_flight=20),
        )
        for i, p in enumerate(ps):
            engine.submit(GenerationRequest(f"r{i}", p, max_tokens=4))
        engine.step()
        assert engine.scheduler.n_running == 2        # 2 × 10 fills the budget
        while engine.has_work():
            engine.step()
        assert engine.stats().requests_completed == 4

    def test_duplicate_request_id_rejected(self, model):
        engine = GenerationEngine(model, FP16KVCache)
        p = prompts(1, seed=17)[0]
        engine.submit(GenerationRequest("dup", p))
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit(GenerationRequest("dup", p))

    def test_pop_result_evicts_and_frees_id(self, model):
        """Long-lived engines consume results via pop_result: memory is
        released and the request id becomes reusable."""
        p = prompts(1, seed=24)[0]
        engine = GenerationEngine(model, FP16KVCache)
        first = engine.generate([GenerationRequest("r", p, max_tokens=3)])["r"]
        assert engine.pop_result("r").tokens == first.tokens
        with pytest.raises(KeyError):
            engine.result("r")
        # Id reusable after eviction; aggregate stats survive it.
        second = engine.generate([GenerationRequest("r", p, max_tokens=3)])["r"]
        assert second.tokens == first.tokens
        st = engine.stats()
        assert st.requests_completed == 2
        assert st.tokens_generated == 6

    def test_prompt_over_max_seq_rejected(self, model):
        too_long = np.zeros(model.config.max_seq, dtype=np.int64)
        engine = GenerationEngine(model, FP16KVCache)
        with pytest.raises(ValueError, match="max_seq"):
            engine.submit(GenerationRequest("r", too_long, max_tokens=1))


# ======================================================================
# Streaming and stats
# ======================================================================
class TestStreaming:
    def test_iterator_streams_every_token_in_order(self, model):
        ps = prompts(3, seed=18)
        engine = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        reqs = [GenerationRequest(f"r{i}", p, max_tokens=5) for i, p in enumerate(ps)]
        seen: dict[str, list[int]] = {r.request_id: [] for r in reqs}
        for event in engine.run(reqs):
            if event.token is not None:
                assert event.index == len(seen[event.request_id])
                seen[event.request_id].append(event.token)
        for i in range(3):
            assert seen[f"r{i}"] == engine.result(f"r{i}").tokens

    def test_callback_api(self, model):
        p = prompts(1, seed=19)[0]
        engine = GenerationEngine(model, FP16KVCache)
        got = []
        engine.submit(GenerationRequest("r", p, max_tokens=4), on_token=got.append)
        while engine.has_work():
            engine.step()
        assert [e.token for e in got] == engine.result("r").tokens
        assert got[-1].finished and got[-1].finish_reason == FINISH_LENGTH

    def test_generate_accepts_generator(self, model):
        ps = prompts(3, seed=23)
        engine = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        results = engine.generate(
            GenerationRequest(f"r{i}", p, max_tokens=3) for i, p in enumerate(ps)
        )
        assert set(results) == {"r0", "r1", "r2"}
        assert all(len(r.tokens) == 3 for r in results.values())

    def test_generate_no_args_returns_only_newly_drained(self, model):
        ps = prompts(2, seed=25)
        engine = GenerationEngine(model, FP16KVCache)
        engine.generate([GenerationRequest("old", ps[0], max_tokens=2)])
        engine.submit(GenerationRequest("new", ps[1], max_tokens=2))
        results = engine.generate()
        assert set(results) == {"new"}          # retained "old" not re-reported
        assert engine.result("old").tokens      # but still retrievable

    def test_throughput_excludes_idle_gaps(self, model):
        fake = {"t": 0.0}

        def clock():
            fake["t"] += 0.01       # every clock read advances 10 ms
            return fake["t"]

        p = prompts(1, seed=26)[0]
        engine = GenerationEngine(model, FP16KVCache, clock=clock)
        engine.generate([GenerationRequest("a", p, max_tokens=3)])
        busy_after_first = engine.stats().elapsed_s
        fake["t"] += 1000.0          # a long idle gap between bursts
        engine.generate([GenerationRequest("b", p, max_tokens=3)])
        st = engine.stats()
        assert st.elapsed_s < busy_after_first * 3   # gap not counted
        assert st.tokens_per_s > 1.0

    def test_mixed_cache_types_fall_back_per_cache(self, model):
        """append_batch dispatch must stay correct when sequences use
        different cache types (no engine path does this, but the model
        API allows it)."""
        ps = prompts(2, seed=27)
        factories = [CACHE_FACTORIES["mant4"], CACHE_FACTORIES["fp16"]]
        single_caches, batch_caches, toks, poss = [], [], [], []
        for p, fac in zip(ps, factories):
            cs = [fac() for _ in range(model.config.n_layers)]
            cb = [fac() for _ in range(model.config.n_layers)]
            toks.append(int(np.argmax(model.prefill(p, cs))))
            model.prefill(p, cb)
            single_caches.append(cs)
            batch_caches.append(cb)
            poss.append(len(p))
        batched = model.decode_step_batch(toks, batch_caches, poss)
        for b in range(2):
            ref = model.decode_step(toks[b], single_caches[b], poss[b])
            assert np.array_equal(batched[b], ref)

    def test_detokenize_streams_incremental_text(self, model):
        """Events carry the new text suffix; concatenation == full detok."""
        detok = lambda toks: "".join(chr(65 + t % 26) for t in toks)
        p = prompts(1, seed=28)[0]
        engine = GenerationEngine(model, FP16KVCache, detokenize=detok)
        texts = []
        for event in engine.run([GenerationRequest("r", p, max_tokens=6)]):
            if event.token is not None:
                assert event.text is not None
                texts.append(event.text)
        assert "".join(texts) == detok(engine.result("r").tokens)

    def test_no_detokenize_leaves_text_none(self, model):
        p = prompts(1, seed=29)[0]
        engine = GenerationEngine(model, FP16KVCache)
        events = list(engine.run([GenerationRequest("r", p, max_tokens=3)]))
        assert all(e.text is None for e in events)

    def test_queue_full_rejected_and_counted(self, model):
        """max_queue_len backpressure: explicit rejection, id reusable."""
        engine = GenerationEngine(
            model, FP16KVCache,
            ServeConfig(max_batch_size=1, max_queue_len=2),
        )
        ps = prompts(3, seed=30)
        engine.submit(GenerationRequest("r0", ps[0], max_tokens=2))
        engine.submit(GenerationRequest("r1", ps[1], max_tokens=2))
        with pytest.raises(QueueFullError, match="max_queue_len"):
            engine.submit(GenerationRequest("r2", ps[2], max_tokens=2))
        st = engine.stats()
        assert st.requests_rejected == 1
        assert st.requests_submitted == 2
        engine.generate()                      # queue drains ...
        engine.submit(GenerationRequest("r2", ps[2], max_tokens=2))
        engine.generate()                      # ... and the id was never taken
        assert engine.result("r2").finish_reason == FINISH_LENGTH

    def test_stats_accounting(self, model):
        ps = prompts(4, seed=20)
        engine = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        engine.generate([GenerationRequest(f"r{i}", p, max_tokens=6)
                         for i, p in enumerate(ps)])
        st = engine.stats()
        assert st.requests_submitted == st.requests_completed == 4
        assert st.tokens_generated == 4 * 6
        assert 1.0 <= st.mean_batch_occupancy <= 2.0
        assert st.tokens_per_s > 0
        assert st.mean_queue_latency_s >= 0
        assert st.cache_slots == 2
