"""Fault-tolerance tests: timeouts, isolation, chaos, drain/restore.

Gates, per the PR acceptance criteria:

* the fault matrix — {timeout, callback raise, forward fault, alloc
  fault, snapshot/restore} × {arena, paged} × {queued, mid-prefill,
  mid-decode} — asserting after every scenario that bystander requests'
  outputs are token-for-token identical to a fault-free run and that
  pool/arena free counts return to baseline;
* bounded retry-with-recompute for transient faults (and for real
  forward exceptions), quarantine as ``FINISH_ERROR`` past the budget;
* deterministic seeded chaos: the same seed against the same workload
  fires the same faults and produces the same outputs;
* drain (admission stopped, in-flight work runs dry) and
  snapshot/restore replaying every in-flight request — greedy and
  seeded-sampling alike — to the same final tokens for deterministic
  cache types (fp16/int4; MANT recompute re-quantizes the replayed
  window, so its restore gate is completion-only);
* the submit() exception path leaves no registered id behind (the same
  id resubmits cleanly after a rejection);
* the always-on-in-tests invariant checker catches planted
  storage-accounting corruption.

MANT note: recompute replays re-quantize decode-staged windows, so
fault-recovery exact-token assertions run on fp16/int4; mant4 gets
completion-only coverage (the standing recompute trade).
"""

import functools
import json

import numpy as np
import pytest

from serve_testlib import assert_storage_baseline, single_stream

from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    ALLOC,
    CALLBACK,
    FORWARD,
    FINISH_ERROR,
    FINISH_LENGTH,
    FINISH_TIMEOUT,
    FaultInjector,
    GenerationEngine,
    GenerationRequest,
    InjectedFault,
    QueueFullError,
    SamplingParams,
    ServeConfig,
)

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}
EXACT_CACHES = ["fp16", "int4"]   # deterministic under recompute replay

def _config(backend, **kw):
    kw.setdefault("max_batch_size", 4)
    if backend in ("paged", "chunked"):
        kw.setdefault("paged", True)
        kw.setdefault("block_tokens", 16)
    if backend == "chunked":
        kw.setdefault("prefill_chunk_tokens", 16)
        kw.setdefault("max_tokens_per_tick", 32)
    return ServeConfig(**kw)
BACKENDS = ["arena", "paged"]


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=160, seed=5)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi)))
            for _ in range(n)]


class ManualClock:
    """A clock tests advance explicitly — timeout tests never sleep."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_engine(model, backend, cache="fp16", faults=None, clock=None, **cfg):
    kwargs = {"faults": faults}
    if clock is not None:
        kwargs["clock"] = clock
    return GenerationEngine(
        model, CACHE_FACTORIES[cache], _config(backend, **cfg), **kwargs)


def check_bystanders(model, eng, cache, ps, victims, n_tokens):
    """Every non-victim request's output is bit-identical to a clean run."""
    factory = CACHE_FACTORIES[cache]
    for i, p in enumerate(ps):
        rid = f"r{i}"
        if rid in victims:
            continue
        assert eng.result(rid).tokens == single_stream(
            model, factory, p, n_tokens), f"bystander {rid} disturbed"


# ======================================================================
# FaultInjector unit behaviour
# ======================================================================
class TestFaultInjector:
    def test_arm_counts_matching_occasions(self):
        fi = FaultInjector()
        fi.arm(FORWARD, "r1", after=2)
        fi.fire(FORWARD, "r0")          # non-matching: no countdown
        fi.fire(FORWARD, "r1")          # occasion 1 (skipped)
        fi.fire(FORWARD, "r1")          # occasion 2 (skipped)
        with pytest.raises(InjectedFault) as e:
            fi.fire(FORWARD, "r1")      # occasion 3 fires
        assert e.value.site == FORWARD and e.value.request_id == "r1"
        fi.fire(FORWARD, "r1")          # times=1: consumed, silent now
        assert fi.fired == 1 and fi.fired_at(FORWARD) == 1

    def test_times_bounds_firings(self):
        fi = FaultInjector().arm(ALLOC, times=2, transient=True)
        for _ in range(2):
            with pytest.raises(InjectedFault) as e:
                fi.fire(ALLOC)
            assert e.value.transient
        fi.fire(ALLOC)                  # exhausted
        assert fi.fired == 2

    def test_chaos_replays_from_seed(self):
        def draw(seed):
            fi = FaultInjector(seed=seed).chaos(FORWARD, 0.5)
            hits = []
            for i in range(50):
                try:
                    fi.fire(FORWARD, f"r{i}")
                except InjectedFault:
                    hits.append(i)
            return hits

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)       # astronomically unlikely to collide
        assert 0 < len(draw(7)) < 50

    def test_clock_skew_applies_after_n_reads(self):
        fi = FaultInjector().clock_skew(100.0, after=2)
        clock = ManualClock()
        wrapped = fi.wrap_clock(clock)
        assert wrapped() == 0.0 and wrapped() == 0.0
        assert wrapped() == 100.0       # 3rd read jumps
        clock.advance(1.0)
        assert wrapped() == 101.0       # skew is permanent
        assert fi.fired_at("clock") == 1

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector().arm("disk")
        with pytest.raises(ValueError, match="probability"):
            FaultInjector().chaos(FORWARD, 0.0)


# ======================================================================
# Timeouts
# ======================================================================
class TestTimeouts:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_queued_request_times_out_without_running(self, model, backend):
        clock = ManualClock()
        ps = prompts(2, seed=1)
        eng = make_engine(model, backend, clock=clock, max_batch_size=1)
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=12))
        eng.submit(GenerationRequest("r1", ps[1], max_tokens=12, timeout_s=5.0))
        eng.step()                      # r0 admitted; r1 waits
        clock.advance(10.0)
        eng.step()                      # sweep expires r1 before admission
        res = eng.result("r1")
        assert res.finish_reason == FINISH_TIMEOUT
        assert res.tokens == []         # never touched the model
        eng.generate()
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 12)
        assert eng.stats().requests_timed_out == 1
        assert_storage_baseline(eng)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_decode_timeout_releases_storage_immediately(
            self, model, backend):
        clock = ManualClock()
        ps = prompts(2, seed=2)
        eng = make_engine(model, backend, clock=clock)
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=20))
        eng.submit(GenerationRequest("r1", ps[1], max_tokens=20, timeout_s=5.0))
        for _ in range(4):
            eng.step()
        assert 0 < len(eng.scheduler.running) == 2
        clock.advance(10.0)
        events = eng.step()
        assert any(e.request_id == "r1" and e.finish_reason == FINISH_TIMEOUT
                   for e in events)
        # Storage came back the moment the sweep ran, not at engine idle.
        if eng.pool is not None:
            held = sum(len(s.lease.table.blocks)
                       for s in eng.scheduler.running if s.lease is not None)
            assert eng.pool.blocks_in_use == held
        else:
            assert eng.arena.slots_in_use == 1
        res = eng.result("r1")
        assert res.finish_reason == FINISH_TIMEOUT
        assert 0 < len(res.tokens) < 20          # partial output retained
        eng.generate()
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 20)
        assert_storage_baseline(eng)

    def test_engine_wide_timeout_and_per_request_override(self, model):
        clock = ManualClock()
        ps = prompts(2, seed=3)
        eng = make_engine(model, "arena", clock=clock, request_timeout_s=5.0)
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=30))
        # Per-request budget beats the engine-wide default.
        eng.submit(GenerationRequest("r1", ps[1], max_tokens=30,
                                     timeout_s=1000.0))
        eng.step()
        clock.advance(7.0)
        eng.generate()
        assert eng.result("r0").finish_reason == FINISH_TIMEOUT
        assert eng.result("r1").finish_reason == FINISH_LENGTH
        assert eng.stats().requests_timed_out == 1
        assert_storage_baseline(eng)

    def test_clock_skew_falsely_expires_but_engine_survives(self, model):
        fi = FaultInjector().clock_skew(50.0, after=10)
        clock = ManualClock()
        ps = prompts(2, seed=4)
        eng = make_engine(model, "paged", faults=fi, clock=clock,
                          request_timeout_s=30.0)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=16))
        eng.generate()
        # The jump fired and expired every in-flight request; no real
        # time passed, yet the engine cleaned up and terminated.
        assert fi.fired_at("clock") == 1
        assert eng.stats().requests_timed_out == 2
        for i in range(2):
            assert eng.result(f"r{i}").finish_reason == FINISH_TIMEOUT
        assert_storage_baseline(eng)

    def test_no_timeout_configured_never_expires(self, model):
        clock = ManualClock()
        ps = prompts(1, seed=5)
        eng = make_engine(model, "arena", clock=clock)
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=8))
        clock.advance(1e9)
        eng.generate()
        assert eng.result("r0").finish_reason == FINISH_LENGTH
        assert eng.stats().requests_timed_out == 0


# ======================================================================
# Callback quarantine
# ======================================================================
class TestCallbackQuarantine:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raising_callback_poisons_only_its_request(self, model, backend):
        ps = prompts(3, seed=6)
        eng = make_engine(model, backend)
        calls = []

        def bad(event):
            calls.append(event)
            if len(calls) >= 3:
                raise RuntimeError("client went away")

        eng.submit(GenerationRequest("r0", ps[0], max_tokens=10))
        eng.submit(GenerationRequest("r1", ps[1], max_tokens=10), on_token=bad)
        eng.submit(GenerationRequest("r2", ps[2], max_tokens=10))
        eng.generate()
        res = eng.result("r1")
        assert res.finish_reason == FINISH_ERROR
        assert "client went away" in res.error
        assert len(calls) == 3          # never called again after raising
        assert len(res.tokens) == 3     # tokens before the raise retained
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 10)
        assert eng.stats().requests_failed == 1
        assert_storage_baseline(eng)

    def test_injected_callback_fault_same_path(self, model):
        fi = FaultInjector().arm(CALLBACK, "r1", after=2)
        ps = prompts(2, seed=7)
        eng = make_engine(model, "paged", faults=fi)
        seen = []
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=8))
        eng.submit(GenerationRequest("r1", ps[1], max_tokens=8),
                   on_token=seen.append)
        eng.generate()
        res = eng.result("r1")
        assert res.finish_reason == FINISH_ERROR
        assert "injected" in res.error and fi.fired_at(CALLBACK) == 1
        assert len(seen) == 2           # two deliveries before the fault
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 8)
        assert_storage_baseline(eng)


# ======================================================================
# Forward faults (injected and real)
# ======================================================================
class TestForwardFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("after", [0, 3], ids=["prefill", "mid-decode"])
    def test_nontransient_fault_quarantines_victim(self, model, backend, after):
        # after=0: the victim's first forward (its prefill) raises;
        # after=3: three forwards succeed first — it dies mid-decode.
        fi = FaultInjector().arm(FORWARD, "r1", after=after)
        ps = prompts(3, seed=8)
        eng = make_engine(model, backend, faults=fi)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
        eng.generate()
        res = eng.result("r1")
        assert res.finish_reason == FINISH_ERROR
        assert "injected" in res.error
        assert len(res.tokens) == (0 if after == 0 else after)
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 10)
        assert eng.stats().requests_failed == 1
        assert eng.stats().retries == 0
        assert_storage_baseline(eng)

    @pytest.mark.parametrize("cache", EXACT_CACHES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_fault_retries_to_exact_output(
            self, model, backend, cache):
        fi = FaultInjector().arm(FORWARD, "r1", after=3, transient=True)
        ps = prompts(3, seed=9)
        eng = make_engine(model, backend, cache=cache, faults=fi,
                          max_retries=2)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
        eng.generate()
        # The victim recovered via recompute and finished bit-exact too.
        check_bystanders(model, eng, cache, ps, set(), 10)
        stats = eng.stats()
        assert stats.retries == 1 and stats.requests_failed == 0
        assert_storage_baseline(eng)

    def test_retry_budget_bounds_poison_request(self, model):
        # A persistently-faulting request burns its retries then fails.
        fi = FaultInjector().arm(FORWARD, "r0", times=10, transient=True)
        ps = prompts(1, seed=10)
        eng = make_engine(model, "paged", max_retries=2, faults=fi)
        eng.submit(GenerationRequest("r0", ps[0], max_tokens=6))
        eng.generate()
        res = eng.result("r0")
        assert res.finish_reason == FINISH_ERROR
        assert eng.stats().retries == 2          # budget, not the 10 armed
        assert fi.fired_at(FORWARD) == 3         # initial + 2 retries
        assert_storage_baseline(eng)

    def test_max_retries_zero_fails_immediately(self, model):
        fi = FaultInjector().arm(FORWARD, "r0", transient=True)
        eng = make_engine(model, "arena", max_retries=0, faults=fi)
        eng.submit(GenerationRequest("r0", prompts(1)[0], max_tokens=6))
        eng.generate()
        assert eng.result("r0").finish_reason == FINISH_ERROR
        assert eng.stats().retries == 0

    def test_mid_prefill_chunk_fault_and_recovery(self, model):
        # Chunked pipeline: the victim dies (then recovers) between its
        # prompt chunks — the mid-prefill cell of the matrix.
        long = np.concatenate(prompts(6, seed=11, lo=8, hi=12))  # > 2 chunks
        short = prompts(1, seed=12)[0]
        for transient in (False, True):
            fi = FaultInjector().arm(FORWARD, "r1", after=1,
                                     transient=transient)
            eng = make_engine(model, "chunked", faults=fi, max_retries=1)
            eng.submit(GenerationRequest("r0", short, max_tokens=8))
            eng.submit(GenerationRequest("r1", long, max_tokens=8))
            eng.generate()
            res = eng.result("r1")
            if transient:
                assert res.tokens == single_stream(model, FP16KVCache, long, 8)
            else:
                assert res.finish_reason == FINISH_ERROR
                assert res.tokens == []          # died before first token
            assert eng.result("r0").tokens == single_stream(
                model, FP16KVCache, short, 8)
            assert_storage_baseline(eng)

    def test_real_forward_exception_recovers_all_participants(self, model):
        # A real exception mid-fused-call is unattributable: everyone in
        # the batch recomputes, and the tick after that is clean.
        ps = prompts(3, seed=13)
        eng = make_engine(model, "paged", max_retries=1)
        real = model.decode_step_batch
        state = {"armed": False, "raised": 0}

        def flaky(*args, **kwargs):
            if state["armed"]:
                state["armed"] = False
                state["raised"] += 1
                raise ValueError("simulated kernel failure")
            return real(*args, **kwargs)

        model.decode_step_batch = flaky
        try:
            for i, p in enumerate(ps):
                eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
            eng.step()                   # prefills + first decode tick
            state["armed"] = True
            eng.generate()               # next decode tick raises
        finally:
            model.decode_step_batch = real
        assert state["raised"] == 1
        check_bystanders(model, eng, "fp16", ps, set(), 10)
        assert eng.stats().retries == 3          # every participant charged
        assert eng.stats().requests_failed == 0
        assert_storage_baseline(eng)


# ======================================================================
# Allocation faults
# ======================================================================
class TestAllocFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_admission_alloc_fault(self, model, backend):
        fi = FaultInjector().arm(ALLOC, "r1")
        ps = prompts(2, seed=14)
        eng = make_engine(model, backend, faults=fi)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=8))
        eng.generate()
        res = eng.result("r1")
        assert res.finish_reason == FINISH_ERROR and res.tokens == []
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 8)
        assert_storage_baseline(eng)

    @pytest.mark.parametrize("transient", [False, True])
    def test_mid_decode_page_growth_alloc_fault(self, model, transient):
        # block_tokens=16, prompt ~8, max_tokens=16 → the victim crosses
        # a page boundary mid-decode; after=1 skips its admission-alloc
        # occasion so the fault lands on that growth allocation.
        fi = FaultInjector().arm(ALLOC, "r1", after=1, transient=transient)
        ps = prompts(2, seed=15, lo=7, hi=9)
        eng = make_engine(model, "paged", faults=fi, max_retries=1)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=16))
        eng.generate()
        res = eng.result("r1")
        if transient:
            assert res.tokens == single_stream(model, FP16KVCache, ps[1], 16)
        else:
            assert res.finish_reason == FINISH_ERROR
            assert 0 < len(res.tokens) < 16      # died at the page boundary
        check_bystanders(model, eng, "fp16", ps, {"r1"}, 16)
        assert_storage_baseline(eng)


# ======================================================================
# Chaos sweeps
# ======================================================================
class TestChaos:
    def test_seeded_chaos_is_reproducible_and_survivable(self, model):
        def chaos_run():
            fi = FaultInjector(seed=42).chaos(FORWARD, 0.08, times=6)
            eng = make_engine(model, "paged", faults=fi, max_retries=3)
            ps = prompts(6, seed=16)
            for i, p in enumerate(ps):
                eng.submit(GenerationRequest(f"r{i}", p, max_tokens=12))
            eng.generate()
            assert_storage_baseline(eng)
            outcome = {
                f"r{i}": (eng.result(f"r{i}").finish_reason,
                          tuple(eng.result(f"r{i}").tokens))
                for i in range(6)
            }
            return outcome, list(fi.log), ps

        (out1, log1, ps), (out2, log2, _) = chaos_run(), chaos_run()
        assert out1 == out2 and log1 == log2     # bit-for-bit replay
        assert len(log1) > 0
        # Everything the chaos spared (or that recovered) is bit-exact.
        for i in range(6):
            reason, tokens = out1[f"r{i}"]
            if reason != FINISH_ERROR:
                assert list(tokens) == single_stream(
                    model, FP16KVCache, ps[i], 12)


# ======================================================================
# submit() rejection hygiene (regression)
# ======================================================================
class TestSubmitRejection:
    def test_rejected_id_can_resubmit_immediately(self, model):
        eng = make_engine(model, "arena")
        p = prompts(1, seed=17)[0]
        with pytest.raises(ValueError, match="max_seq"):
            eng.submit(GenerationRequest("r0", p, max_tokens=10_000))
        # The rejection left no registered id or queue entry behind.
        assert eng.scheduler.queue_depth == 0
        eng.submit(GenerationRequest("r0", p, max_tokens=4))
        eng.generate()
        assert eng.result("r0").finish_reason == FINISH_LENGTH
        assert eng.stats().requests_rejected == 1
        assert_storage_baseline(eng)

    def test_queue_full_rejection_then_resubmit(self, model):
        eng = make_engine(model, "arena", max_queue_len=1, max_batch_size=1)
        ps = prompts(3, seed=18)
        eng.submit(GenerationRequest("q0", ps[0], max_tokens=4))
        with pytest.raises(QueueFullError):
            eng.submit(GenerationRequest("q1", ps[1], max_tokens=4))
        eng.generate()                   # drains the queue
        eng.submit(GenerationRequest("q1", ps[2], max_tokens=4))
        eng.generate()
        assert eng.result("q1").finish_reason == FINISH_LENGTH
        assert eng.stats().requests_rejected == 1


# ======================================================================
# Drain
# ======================================================================
class TestDrain:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drain_finishes_running_leaves_queued(self, model, backend):
        ps = prompts(4, seed=19)
        eng = make_engine(model, backend, max_batch_size=2)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=6))
        eng.step()                       # 2 admitted, 2 queued
        assert eng.scheduler.n_running == 2
        eng.drain()
        assert eng.scheduler.n_running == 0
        assert eng.scheduler.queue_depth == 2    # untouched by the drain
        assert eng.draining
        with pytest.raises(RuntimeError, match="draining"):
            eng.submit(GenerationRequest("late", ps[0], max_tokens=2))
        eng.resume_admission()
        eng.generate()
        check_bystanders(model, eng, "fp16", ps, set(), 6)
        assert_storage_baseline(eng)


# ======================================================================
# Snapshot / restore
# ======================================================================
class TestSnapshotRestore:
    @pytest.mark.parametrize("cache", EXACT_CACHES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_decode_snapshot_restores_exact_tokens(
            self, model, backend, cache):
        ps = prompts(4, seed=20)
        eng = make_engine(model, backend, cache=cache, max_batch_size=2)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
        for _ in range(4):
            eng.step()                   # 2 mid-decode, 2 still queued
        snap = json.loads(json.dumps(eng.snapshot()))   # JSON-serializable
        assert len(snap["requests"]) == 4
        eng2 = GenerationEngine.restore(
            snap, model, CACHE_FACTORIES[cache])
        eng2.generate()
        check_bystanders(model, eng2, cache, ps, set(), 10)
        assert eng2.stats().snapshot_restores == 4
        assert_storage_baseline(eng2)

    def test_sampled_requests_restore_rng_midstream(self, model):
        # Reference: one uninterrupted engine run of the same requests.
        ps = prompts(3, seed=21)
        sampling = SamplingParams(temperature=0.9, top_k=8, seed=123)

        def reqs():
            return [GenerationRequest(f"r{i}", p, max_tokens=12,
                                      sampling=sampling)
                    for i, p in enumerate(ps)]

        ref = make_engine(model, "paged")
        ref.generate(reqs())
        eng = make_engine(model, "paged")
        for r in reqs():
            eng.submit(r)
        for _ in range(5):
            eng.step()
        snap = json.loads(json.dumps(eng.snapshot()))
        eng2 = GenerationEngine.restore(snap, model, CACHE_FACTORIES["fp16"])
        eng2.generate()
        for i in range(3):
            assert eng2.result(f"r{i}").tokens == ref.result(f"r{i}").tokens
        assert_storage_baseline(eng2)

    def test_parallel_sampling_family_restores(self, model):
        p = prompts(1, seed=22)[0]
        sampling = SamplingParams(temperature=0.8, seed=9)

        def req():
            return GenerationRequest("r", p, max_tokens=10, n=3,
                                     sampling=sampling)

        ref = make_engine(model, "paged")
        ref.generate([req()])
        eng = make_engine(model, "paged")
        eng.submit(req())
        for _ in range(4):
            eng.step()                   # past the fork: 3 live lanes
        snap = json.loads(json.dumps(eng.snapshot()))
        assert len(snap["requests"][0]["samples"]) == 3
        eng2 = GenerationEngine.restore(snap, model, CACHE_FACTORIES["fp16"])
        eng2.generate()
        got = eng2.result("r")
        want = ref.result("r")
        assert [s.tokens for s in got.samples] == [
            s.tokens for s in want.samples]
        assert_storage_baseline(eng2)

    def test_drain_then_snapshot_then_restore_queued(self, model):
        # The graceful-shutdown shape: drain in-flight work, snapshot
        # the queue, bring it back up elsewhere.
        ps = prompts(4, seed=23)
        eng = make_engine(model, "arena", max_batch_size=2)
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=8))
        eng.step()
        eng.drain()
        snap = eng.snapshot()
        assert len(snap["requests"]) == 2        # only the queued survivors
        assert all(s["tokens"] == [] for r in snap["requests"]
                   for s in r["samples"])
        eng2 = GenerationEngine.restore(snap, model, CACHE_FACTORIES["fp16"])
        eng2.generate()
        for i in (2, 3):
            assert eng2.result(f"r{i}").tokens == single_stream(
                model, FP16KVCache, ps[i], 8)
        assert_storage_baseline(eng2)

    def test_mant_restore_completes(self, model):
        # MANT recompute re-quantizes the replayed window: the restore
        # gate here is completion, not token identity (standing trade).
        ps = prompts(2, seed=24)
        eng = make_engine(model, "paged", cache="mant4")
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
        for _ in range(3):
            eng.step()
        snap = json.loads(json.dumps(eng.snapshot()))
        eng2 = GenerationEngine.restore(snap, model, CACHE_FACTORIES["mant4"])
        eng2.generate()
        for i in range(2):
            res = eng2.result(f"r{i}")
            assert res.finish_reason == FINISH_LENGTH
            assert len(res.tokens) == 10
        assert_storage_baseline(eng2)

    def test_snapshot_version_and_callbacks(self, model):
        eng = make_engine(model, "arena")
        eng.submit(GenerationRequest("r", prompts(1, seed=25)[0], max_tokens=4))
        snap = eng.snapshot()
        with pytest.raises(ValueError, match="version"):
            GenerationEngine.restore({**snap, "version": 99},
                                     model, FP16KVCache)
        seen = []
        eng2 = GenerationEngine.restore(snap, model, FP16KVCache,
                                        on_token={"r": seen.append})
        eng2.generate()
        assert len(seen) == 4            # callbacks re-attached per id


# ======================================================================
# Invariant checker
# ======================================================================
class TestInvariantChecker:
    def test_clean_engine_passes(self, model):
        eng = make_engine(model, "paged")
        eng.generate([GenerationRequest("r", prompts(1)[0], max_tokens=4)])
        eng.check_invariants()           # no raise

    def test_stray_arena_lease_detected(self, model):
        eng = make_engine(model, "arena")
        lease = eng.arena.acquire()      # storage no sequence accounts for
        with pytest.raises(RuntimeError, match="arena slot accounting"):
            eng.check_invariants()
        eng.arena.release(lease)
        eng.check_invariants()

    def test_leaked_pool_block_detected(self, model):
        eng = make_engine(model, "paged")
        bid = eng.pool.allocate()        # referenced, held by no lease
        with pytest.raises(RuntimeError, match="refcount"):
            eng.check_invariants()
        eng.pool.decref(bid)
        eng.check_invariants()

    def test_strict_mode_runs_every_tick(self, model, monkeypatch):
        # conftest sets REPRO_SERVE_STRICT=1: a mid-serve corruption
        # fails the very tick it appears, from inside step().
        eng = make_engine(model, "arena")
        eng.submit(GenerationRequest("r", prompts(1)[0], max_tokens=6))
        eng.step()
        stray = eng.arena.acquire()
        with pytest.raises(RuntimeError, match="arena slot accounting"):
            eng.step()
        eng.arena.release(stray)
