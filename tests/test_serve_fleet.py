"""Fleet-level fault tolerance: the multi-replica router.

What must hold:

* **Routing** — shared-prefix requests land on one replica (affinity),
  load fallback and composed backpressure work, and the reserved hedge
  suffix / duplicate ids are rejected at submit.
* **Health** — a replica's error budget drives
  HEALTHY → DEGRADED → QUARANTINED, the circuit breaker walks
  closed → open → half-open → closed, and routing honours it.
* **Chaos + failover** — a seeded ``REPLICA_CRASH`` mid-decode moves
  the dead replica's in-flight requests onto survivors where they
  complete *exactly* (greedy, deterministic caches); bystander
  replicas stay token-for-token identical to an undisturbed fleet; the
  whole scenario replays bit-for-bit from the injector seed; and the
  fleet's storage returns to baseline.
* **Hedging** — a straggler on a wedged replica is duplicated, the
  fast copy wins with exact output, the loser is cancelled.
* **Snapshot rotation** — keep-last-K files per replica; a *sampled*
  request crashed mid-decode recovers from the last rotation snapshot
  (RNG state + replayed delta) with output identical to an undisturbed
  fleet.
* **Satellites** — per-sample cancel releases the forked lease with
  siblings bit-exact; ``drain()`` quiesces under active chaos with no
  hung handles; the recompute-aware ``DeadlinePolicy`` wastes fewer
  replayed tokens than pure EDF.
"""

import functools
import os

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    DeadlinePolicy,
    FaultInjector,
    FleetConfig,
    FleetRouter,
    GenerationEngine,
    GenerationRequest,
    QueueFullError,
    SamplingParams,
    ServeConfig,
)
from repro.serve.faults import ALLOC, FORWARD, REPLICA_CRASH, REPLICA_STALL
from repro.serve.fleet import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    HEDGE_SUFFIX,
    prefix_hash,
)
from serve_testlib import assert_storage_baseline, single_stream

VOCAB = 64
CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}
EXACT_CACHES = ["fp16", "int4"]   # deterministic under recompute replay


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=160, seed=5)
    return TransformerLM(cfg)


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi)))
            for _ in range(n)]


def requests(ps, max_tokens=12, prefix="r", **kw):
    return [GenerationRequest(f"{prefix}{i}", p, max_tokens=max_tokens, **kw)
            for i, p in enumerate(ps)]


def fleet_storage_baseline(router):
    for engine in router.replicas:
        assert_storage_baseline(engine)


def home_replica(prompt, fleet_cfg, n_replicas):
    return prefix_hash(prompt, fleet_cfg.affinity_tokens) % n_replicas


def prompt_for_replica(index, n_replicas=2, size=8, seed=0):
    """A prompt whose affinity hash maps to ``index``."""
    rng = np.random.default_rng(seed)
    while True:
        p = rng.integers(0, VOCAB, size=size)
        if prefix_hash(p, 16) % n_replicas == index:
            return p


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
class TestRouting:
    def test_shared_prefix_lands_on_one_replica(self, model):
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=4),
                             FleetConfig(n_replicas=3, affinity_load_slack=16))
        head = np.arange(16) % VOCAB
        reqs = [GenerationRequest(f"s{i}", np.concatenate([head, [i]]),
                                  max_tokens=4) for i in range(6)]
        for r in reqs:
            router.submit(r)
        homes = {router._tracked[r.request_id].copies[r.request_id]
                 for r in reqs}
        assert len(homes) == 1          # one shared home for the cohort
        assert router.metrics.get("affinity_hits").value == 6
        results = router.generate([])
        while router.has_work():
            router.step()
        fleet_storage_baseline(router)

    def test_load_fallback_spreads_a_hot_prefix(self, model):
        cfg = FleetConfig(n_replicas=2, affinity_load_slack=0)
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=2),
                             cfg)
        head = np.arange(16) % VOCAB
        for i in range(6):
            router.submit(GenerationRequest(
                f"s{i}", np.concatenate([head, [i]]), max_tokens=4))
        used = {router._tracked[f"s{i}"].copies[f"s{i}"] for i in range(6)}
        assert len(used) == 2           # slack 0: overflow moves off home
        assert router.metrics.get("fallback_routes").value > 0

    def test_composed_backpressure(self, model):
        serve = ServeConfig(max_batch_size=1, max_queue_len=1)
        router = FleetRouter(model, FP16KVCache, serve,
                             FleetConfig(n_replicas=2))
        ps = prompts(8, seed=3, lo=6, hi=7)
        accepted = 0
        with pytest.raises(QueueFullError):
            for i, p in enumerate(ps):
                router.submit(GenerationRequest(f"q{i}", p, max_tokens=4))
                accepted += 1
        # Before any tick each replica queues exactly one request
        # (max_queue_len=1); the third submission tries both, finds
        # both full, and the fleet sheds it.
        assert accepted == 2
        assert router.metrics.get("requests_rejected").value == 1

    def test_reserved_and_duplicate_ids_rejected(self, model):
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=2),
                             FleetConfig(n_replicas=2))
        p = prompts(1)[0]
        with pytest.raises(ValueError, match="reserved"):
            router.submit(GenerationRequest("x" + HEDGE_SUFFIX, p))
        router.submit(GenerationRequest("dup", p, max_tokens=2))
        with pytest.raises(ValueError, match="duplicate"):
            router.submit(GenerationRequest("dup", p, max_tokens=2))


# ---------------------------------------------------------------------------
# Health + circuit breaker
# ---------------------------------------------------------------------------
class TestHealth:
    def test_budget_burn_quarantines_and_probe_recovers(self, model):
        clock = ManualClock()
        fi = FaultInjector(seed=3)
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=4),
            FleetConfig(n_replicas=2, degrade_errors=1, quarantine_errors=2,
                        breaker_open_s=5.0),
            clock=clock, faults=fi)
        sick = router._replicas[0]
        p = prompt_for_replica(0)

        # Two poisoned requests burn replica-0's budget.
        for i in range(2):
            rid = f"bad{i}"
            fi.arm(FORWARD, rid, transient=False)
            router.submit(GenerationRequest(rid, p, max_tokens=4))
            while not router.has_result(rid):
                router.step()
            assert router.pop_result(rid).finish_reason == "error"
        router.step()
        assert sick.state == QUARANTINED
        assert sick.breaker == BREAKER_OPEN

        # While quarantined, replica-0's affinity traffic routes away.
        router.submit(GenerationRequest("re", p, max_tokens=4))
        assert router._tracked["re"].copies["re"] == "replica-1"
        while not router.has_result("re"):
            router.step()
        assert router.pop_result("re").finish_reason == "length"

        # Cooldown -> half-open -> the next submission is the probe.
        clock.advance(5.1)
        router.step()
        assert sick.breaker == BREAKER_HALF_OPEN
        router.submit(GenerationRequest("probe", p, max_tokens=4))
        assert router._tracked["probe"].copies["probe"] == "replica-0"
        assert sick.probe_rid == "probe"
        while not router.has_result("probe"):
            router.step()
        assert router.pop_result("probe").finish_reason == "length"
        assert sick.breaker == BREAKER_CLOSED
        assert sick.state == HEALTHY
        fleet_storage_baseline(router)

    def test_single_error_only_degrades(self, model):
        fi = FaultInjector(seed=3)
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=4),
            FleetConfig(n_replicas=2, degrade_errors=1, quarantine_errors=3),
            faults=fi)
        p = prompt_for_replica(0)
        fi.arm(FORWARD, "bad", transient=False)
        router.submit(GenerationRequest("bad", p, max_tokens=4))
        while not router.has_result("bad"):
            router.step()
        router.step()
        rep = router._replicas[0]
        assert rep.state == DEGRADED
        assert rep.breaker == BREAKER_CLOSED      # degraded still admits
        router.submit(GenerationRequest("ok", p, max_tokens=4))
        # Healthy replica-1 outranks the degraded home.
        assert router._tracked["ok"].copies["ok"] == "replica-1"


# ---------------------------------------------------------------------------
# Replica chaos: crash failover + stall
# ---------------------------------------------------------------------------
def run_fleet(model, cache_name, faults=None, n=6, max_tokens=12,
              n_replicas=2, serve=None, fleet_cfg=None):
    router = FleetRouter(
        model, CACHE_FACTORIES[cache_name],
        serve or ServeConfig(max_batch_size=4),
        fleet_cfg or FleetConfig(n_replicas=n_replicas), faults=faults)
    reqs = requests(prompts(n, seed=1, lo=6, hi=12), max_tokens=max_tokens)
    results = router.generate(reqs)
    return router, {rid: r.tokens for rid, r in results.items()}, {
        rid: r.finish_reason for rid, r in results.items()}


class TestReplicaChaos:
    @pytest.mark.parametrize("cache_name", EXACT_CACHES)
    def test_crash_failover_exact_and_bystanders_identical(
            self, model, cache_name):
        _, base_tokens, _ = run_fleet(model, cache_name)

        fi = FaultInjector(seed=7)
        fi.arm(REPLICA_CRASH, "replica-0", after=3)
        router, tokens, reasons = run_fleet(model, cache_name, faults=fi)

        assert fi.log == [(REPLICA_CRASH, "replica-0")]
        assert router.metrics.get("replica_crashes").value == 1
        assert router.metrics.get("failovers").value >= 1
        # Failed-over requests continue token-for-token; bystanders on
        # replica-1 were never touched — everything matches the
        # undisturbed fleet AND the single-stream reference.
        assert tokens == base_tokens
        assert all(r == "length" for r in reasons.values())
        for req in requests(prompts(6, seed=1, lo=6, hi=12), max_tokens=12):
            assert tokens[req.request_id] == single_stream(
                model, CACHE_FACTORIES[cache_name], req.prompt, 12)
        fleet_storage_baseline(router)

    def test_crash_chaos_replays_identically(self, model):
        outcomes = []
        for _ in range(2):
            fi = FaultInjector(seed=11)
            fi.chaos(REPLICA_CRASH, probability=0.08, times=2)
            router, tokens, reasons = run_fleet(model, "fp16", faults=fi,
                                                n=8, n_replicas=3)
            outcomes.append((tokens, reasons, list(fi.log)))
            fleet_storage_baseline(router)
        assert outcomes[0] == outcomes[1]
        assert any(site == REPLICA_CRASH for site, _ in outcomes[0][2])

    def test_mant4_failover_completes(self, model):
        """MANT recompute is the standing trade: completion, not
        bit-exactness, is the failover gate for mant4."""
        fi = FaultInjector(seed=7)
        fi.arm(REPLICA_CRASH, "replica-0", after=3)
        router, tokens, reasons = run_fleet(model, "mant4", faults=fi)
        assert all(r == "length" for r in reasons.values())
        assert all(len(t) == 12 for t in tokens.values())
        fleet_storage_baseline(router)

    def test_stall_wedges_exactly_k_ticks(self, model):
        fi = FaultInjector(seed=5)
        fi.arm(REPLICA_STALL, "replica-0", times=3)
        router, tokens, reasons = run_fleet(model, "fp16", faults=fi)
        assert router.metrics.get("replica_stalls").value == 3
        assert [s for s, _ in fi.log] == [REPLICA_STALL] * 3
        _, base_tokens, _ = run_fleet(model, "fp16")
        assert tokens == base_tokens    # stall delays, never corrupts
        fleet_storage_baseline(router)

    def test_crash_with_empty_fleet_is_clean(self, model):
        fi = FaultInjector(seed=2)
        fi.arm(REPLICA_CRASH, "replica-1")
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=2),
                             FleetConfig(n_replicas=2), faults=fi)
        router.step()
        assert router.metrics.get("replica_crashes").value == 1
        assert router._replicas[1].incarnation == 1
        res = router.generate(requests(prompts(2, seed=9), max_tokens=4))
        assert all(r.finish_reason == "length" for r in res.values())


# ---------------------------------------------------------------------------
# Hedged requests
# ---------------------------------------------------------------------------
class TestHedging:
    def test_hedge_rescues_straggler_on_wedged_replica(self, model):
        clock = ManualClock()
        fi = FaultInjector(seed=4)
        fi.arm(REPLICA_STALL, "replica-0", times=200)
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=4),
            FleetConfig(n_replicas=2, hedge_after_s=1.0),
            clock=clock, faults=fi)
        p = prompt_for_replica(0, size=8)
        router.submit(GenerationRequest("slow", p, max_tokens=10))
        assert router._tracked["slow"].copies == {"slow": "replica-0"}
        while not router.has_result("slow"):
            clock.advance(0.25)
            router.step()
        result = router.pop_result("slow")
        assert result.request_id == "slow"
        assert result.tokens == single_stream(model, FP16KVCache, p, 10)
        m = router.metrics
        assert m.get("hedges_launched").value == 1
        assert m.get("hedges_won").value == 1
        assert m.get("hedges_cancelled").value == 1
        # The losing copy's storage is back; the wedged replica unwedges
        # once the stall budget runs out.
        while router.has_work():
            router.step()
        fleet_storage_baseline(router)

    def test_no_hedge_before_delay_or_after_first_token(self, model):
        clock = ManualClock()
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=4),
            FleetConfig(n_replicas=2, hedge_after_s=100.0), clock=clock)
        res = router.generate(requests(prompts(4, seed=2), max_tokens=6))
        assert router.metrics.get("hedges_launched").value == 0
        assert all(r.finish_reason == "length" for r in res.values())

    def test_percentile_delay_needs_warm_history(self, model):
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=4),
            FleetConfig(n_replicas=2, hedge_ttft_percentile=95.0,
                        hedge_min_samples=4))
        assert router._hedge_delay() is None      # cold: hedging off
        router.generate(requests(prompts(6, seed=8), max_tokens=4))
        delay = router._hedge_delay()
        assert delay is not None and delay >= 0.0


# ---------------------------------------------------------------------------
# Snapshot rotation + crash recovery
# ---------------------------------------------------------------------------
class TestSnapshotRotation:
    def test_keep_last_k(self, model, tmp_path):
        clock = ManualClock()
        router = FleetRouter(
            model, FP16KVCache, ServeConfig(max_batch_size=2),
            FleetConfig(n_replicas=2, snapshot_interval_s=1.0,
                        snapshot_dir=str(tmp_path), snapshot_keep=2),
            clock=clock)
        router.submit(GenerationRequest("r0", prompts(1)[0], max_tokens=64))
        router.step()                    # arms the per-replica timers
        for _ in range(5):
            clock.advance(1.1)
            router.step()
        for rep in ("replica-0", "replica-1"):
            files = sorted(os.listdir(tmp_path / rep))
            assert len(files) == 2       # keep-last-K rotation
            assert files[-1] > files[0]  # monotone sequence numbers
        assert router.metrics.get("snapshots_written").value == 10

    def test_sampled_crash_recovers_from_rotation(self, model, tmp_path):
        """The recovery floor for sampled requests: RNG state from the
        last rotation snapshot + deterministic delta replay ==
        token-identical to an undisturbed fleet."""
        sampling = SamplingParams(temperature=1.0, top_k=8, seed=13)

        def run(crash: bool):
            clock = ManualClock()
            snap_dir = tmp_path / ("crash" if crash else "base")
            router = FleetRouter(
                model, FP16KVCache, ServeConfig(max_batch_size=4),
                FleetConfig(n_replicas=2, snapshot_interval_s=1.0,
                            snapshot_dir=str(snap_dir), snapshot_keep=3),
                clock=clock)
            ps = prompts(4, seed=6, lo=6, hi=10)
            for i, p in enumerate(ps):
                router.submit(GenerationRequest(
                    f"s{i}", p, max_tokens=24, sampling=sampling))
            for _ in range(4):
                router.step()            # some tokens out, timers armed
            clock.advance(1.1)
            router.step()                # rotation snapshot (mid-decode)
            for _ in range(2):
                router.step()            # delta beyond the snapshot
            if crash:
                router.crash_replica("replica-0")
            while router.has_work():
                router.step()
            fleet_storage_baseline(router)
            return {f"s{i}": router.result(f"s{i}").tokens for i in range(4)}

        base = run(crash=False)
        recovered = run(crash=True)
        assert recovered == base

    def test_greedy_crash_without_snapshots_uses_journal(self, model):
        """Rotation disabled: greedy requests still recover exactly from
        the router's live token journal."""
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=4),
                             FleetConfig(n_replicas=2))
        ps = prompts(4, seed=6, lo=6, hi=10)
        for i, p in enumerate(ps):
            router.submit(GenerationRequest(f"g{i}", p, max_tokens=16))
        for _ in range(6):
            router.step()
        router.crash_replica("replica-0")
        while router.has_work():
            router.step()
        for i, p in enumerate(ps):
            assert router.result(f"g{i}").tokens == single_stream(
                model, FP16KVCache, p, 16)
        fleet_storage_baseline(router)


# ---------------------------------------------------------------------------
# Satellite: per-sample cancel
# ---------------------------------------------------------------------------
class TestCancelSample:
    CFG = ServeConfig(max_batch_size=4, paged=True, block_tokens=8)

    def test_post_fork_cancel_releases_lease_siblings_exact(self, model):
        p = prompts(1, seed=4, lo=8, hi=9)[0]
        ref = GenerationEngine(model, FP16KVCache, self.CFG)
        ref_res = ref.generate([GenerationRequest(
            "n3", p, max_tokens=12, n=3)])["n3"]

        eng = GenerationEngine(model, FP16KVCache, self.CFG)
        handle = eng.submit(GenerationRequest("n3", p, max_tokens=12, n=3))
        for _ in range(3):
            eng.step()                  # prefill + fork + a few tokens
        before = eng.pool.blocks_in_use
        assert handle.cancel(sample_index=1)
        assert eng.pool.blocks_in_use < before    # forked lease released
        result = handle.result()
        assert result.samples[1].finish_reason == "cancelled"
        for i in (0, 2):                # survivors bit-exact
            assert result.samples[i].tokens == ref_res.samples[i].tokens
            assert result.samples[i].finish_reason == "length"
        assert_storage_baseline(eng)

    def test_pre_fork_cancel_skips_materialization(self, model):
        p = prompts(1, seed=4, lo=8, hi=9)[0]
        eng = GenerationEngine(model, FP16KVCache, self.CFG)
        handle = eng.submit(GenerationRequest("pf", p, max_tokens=8, n=3))
        assert handle.cancel(sample_index=2)     # still queued: pre-fork
        assert not handle.cancel(sample_index=2)  # idempotent
        result = handle.result()
        assert result.samples[2].finish_reason == "cancelled"
        assert result.samples[2].tokens == []
        assert [s.finish_reason for s in result.samples[:2]] == ["length"] * 2
        assert_storage_baseline(eng)

    def test_cancelling_every_sample_cancels_the_request(self, model):
        p = prompts(1, seed=4, lo=8, hi=9)[0]
        eng = GenerationEngine(model, FP16KVCache, self.CFG)
        handle = eng.submit(GenerationRequest("all", p, max_tokens=8, n=2))
        for _ in range(2):
            eng.step()
        assert handle.cancel(sample_index=0)
        assert handle.cancel(sample_index=1)
        assert handle.result().finish_reason == "cancelled"
        assert eng.stats().requests_cancelled == 1    # counted once
        assert_storage_baseline(eng)

    def test_sample_index_validation(self, model):
        p = prompts(1, seed=4)[0]
        eng = GenerationEngine(model, FP16KVCache, self.CFG)
        handle = eng.submit(GenerationRequest("v", p, max_tokens=4, n=2))
        with pytest.raises(ValueError, match="sample_index"):
            handle.cancel(sample_index=5)
        # n == 1: sample 0 is the whole request.
        h1 = eng.submit(GenerationRequest("one", p, max_tokens=4))
        assert h1.cancel(sample_index=0)
        assert h1.result().finish_reason == "cancelled"

    def test_fleet_forwards_sample_cancel(self, model):
        router = FleetRouter(model, FP16KVCache, self.CFG,
                             FleetConfig(n_replicas=2))
        p = prompts(1, seed=4, lo=8, hi=9)[0]
        handle = router.submit(GenerationRequest("fn", p, max_tokens=8, n=3))
        for _ in range(3):
            router.step()
        assert handle.cancel(sample_index=1)
        result = handle.result()
        assert result.samples[1].finish_reason == "cancelled"
        assert [s.finish_reason for s in result.samples[::2]] == ["length"] * 2
        fleet_storage_baseline(router)


# ---------------------------------------------------------------------------
# Satellite: drain under active chaos
# ---------------------------------------------------------------------------
class TestDrainUnderChaos:
    def test_engine_drain_quiesces_with_faults_firing(self, model):
        fi = FaultInjector(seed=21)
        fi.chaos(FORWARD, probability=0.25, transient=True)
        fi.chaos(ALLOC, probability=0.15, transient=True)
        cfg = ServeConfig(max_batch_size=3, paged=True, block_tokens=8)
        eng = GenerationEngine(model, FP16KVCache, cfg, faults=fi)
        handles = [eng.submit(r)
                   for r in requests(prompts(8, seed=14, lo=5, hi=10),
                                     max_tokens=8, prefix="d")]
        for _ in range(2):
            eng.step()
        eng.drain()
        # Quiesced: nothing running, no storage held — transiently
        # faulted sequences were requeued, not leaked or hung.
        assert eng.scheduler.n_running == 0
        assert_storage_baseline(eng)
        assert len(fi.log) > 0          # chaos actually fired mid-drain
        # Every handle still resolves after admission resumes.
        eng.resume_admission()
        for h in handles:
            assert h.result().finish_reason in ("length", "error")
        assert_storage_baseline(eng)

    def test_fleet_drain_under_chaos(self, model):
        fi = FaultInjector(seed=22)
        fi.chaos(FORWARD, probability=0.2, transient=True)
        fi.arm(REPLICA_STALL, "replica-0", after=1, times=2)
        router = FleetRouter(model, FP16KVCache,
                             ServeConfig(max_batch_size=3),
                             FleetConfig(n_replicas=2), faults=fi)
        for r in requests(prompts(6, seed=15, lo=5, hi=10), max_tokens=6,
                          prefix="f"):
            router.submit(r)
        router.step()
        router.drain()
        assert all(r.scheduler.n_running == 0 for r in router._replicas
                   for r in [r.engine])
        with pytest.raises(RuntimeError, match="draining"):
            router.submit(GenerationRequest("late", prompts(1)[0]))
        router.resume_admission()
        while router.has_work():
            router.step()
        fleet_storage_baseline(router)


# ---------------------------------------------------------------------------
# Satellite: recompute-aware preemption
# ---------------------------------------------------------------------------
class TestRecomputeAwarePreemption:
    CFG = ServeConfig(max_batch_size=3, paged=True, block_tokens=8,
                      num_blocks=8, enable_prefix_cache=False)

    def run_saturated(self, model, w):
        rng = np.random.default_rng(17)
        ps = [rng.integers(0, VOCAB, size=8) for _ in range(3)]
        eng = GenerationEngine(
            model, FP16KVCache, self.CFG,
            policy=DeadlinePolicy(aging_cap_s=1000.0, preempt_token_cost_s=w))
        eng.submit(GenerationRequest("old", ps[0], max_tokens=40,
                                     deadline_s=100.0))
        for _ in range(30):
            eng.step()                  # "old" invests 30 decoded tokens
        eng.submit(GenerationRequest("fresh", ps[1], max_tokens=8,
                                     deadline_s=99.95))
        eng.submit(GenerationRequest("tight", ps[2], max_tokens=8,
                                     deadline_s=50.0))
        while eng.has_work():
            eng.step()
        return eng, ps

    def test_fewer_wasted_recompute_tokens_than_edf(self, model):
        edf, ps = self.run_saturated(model, w=0.0)
        aware, _ = self.run_saturated(model, w=0.002)
        assert edf.stats().preemptions >= 1
        assert aware.stats().preemptions >= 1
        # Pure EDF evicts the latest-deadline sequence even after it has
        # decoded 30 tokens; the recompute-aware policy picks the fresh
        # one, so its replayed-prefill bill is strictly smaller.
        assert (aware.metrics.get("prefill_tokens").value
                < edf.metrics.get("prefill_tokens").value)
        # Both schedules still produce exact output for every request.
        for eng in (edf, aware):
            assert eng.result("old").tokens == single_stream(
                model, FP16KVCache, ps[0], 40)
            assert eng.result("fresh").tokens == single_stream(
                model, FP16KVCache, ps[1], 8)
            assert_storage_baseline(eng)

    def test_zero_weight_is_pure_edf(self, model):
        """`preempt_token_cost_s=0` must reproduce latest-deadline-first
        exactly (the pre-change victim rule)."""

        class Seq:
            def __init__(self, rid, submit, deadline, n_tokens):
                self.request = GenerationRequest(
                    rid, np.arange(4), deadline_s=deadline)
                self.submit_time = submit
                self.arrival_seq = 0
                self.tokens = [0] * n_tokens

        a = Seq("a", 0.0, 10.0, 30)
        b = Seq("b", 0.0, 9.95, 0)
        edf = DeadlinePolicy(aging_cap_s=1000.0, preempt_token_cost_s=0.0)
        aware = DeadlinePolicy(aging_cap_s=1000.0, preempt_token_cost_s=0.002)
        assert edf.choose_preemption_victim([a, b]) is a
        assert aware.choose_preemption_victim([a, b]) is b


# ---------------------------------------------------------------------------
# Stats / invariants / harness integration
# ---------------------------------------------------------------------------
class TestFleetSurface:
    def test_stats_summary_shape(self, model):
        router = FleetRouter(model, FP16KVCache, ServeConfig(max_batch_size=2),
                             FleetConfig(n_replicas=2))
        router.generate(requests(prompts(3, seed=2), max_tokens=4))
        s = router.stats().summary()
        assert set(s) == {"fleet", "health", "replicas"}
        assert set(s["replicas"]) == {"replica-0", "replica-1"}
        assert s["health"]["replica-0"]["state"] == HEALTHY
        assert s["fleet"]["requests_routed"] == 3
        merged = router.merged_metrics()
        assert merged.get("requests_completed").value == 3

    def test_loadharness_drives_a_fleet_on_virtual_clock(self, model):
        from repro.serve import (ArrivalProcess, LengthDist, LoadHarness,
                                 TrafficClass, WorkloadSpec, generate_trace)
        spec = WorkloadSpec(
            classes=(TrafficClass("c", prompt_len=LengthDist.fixed(8),
                                  output_len=LengthDist.fixed(6)),),
            arrivals=ArrivalProcess.poisson(40.0),
            n_requests=16, vocab_size=VOCAB, seed=3)
        trace = generate_trace(spec)
        fleet_cfg = FleetConfig(n_replicas=2)
        serve = ServeConfig(max_batch_size=4)

        def factory(clock):
            return FleetRouter(model, FP16KVCache, serve, fleet_cfg,
                               clock=clock)

        harness = LoadHarness(model, FP16KVCache, serve, clock="virtual",
                              engine_factory=factory)
        result = harness.run(trace)
        assert result.records
        assert all(r.finish_reason == "length" for r in result.records)
        summary = result.stats.summary()
        assert "fleet" in summary
        # Replayed, the fleet-backed harness run is deterministic.
        harness2 = LoadHarness(model, FP16KVCache, serve, clock="virtual",
                               engine_factory=factory)
        again = harness2.run(trace)
        assert [(r.request_id, r.tokens, r.finish_s) for r in result.records] \
            == [(r.request_id, r.tokens, r.finish_s) for r in again.records]
