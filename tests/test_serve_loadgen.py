"""Load-harness + SLO tests: seeded workloads, replay, scorecards.

Gates, per the PR acceptance criteria:

* **Seeded determinism** — the same :class:`WorkloadSpec` always
  expands to the same trace *bit for bit* (identical JSON), every
  :class:`LengthDist` kind consumes exactly one rng draw (so the
  trace-wide draw order is independent of distribution shapes), and a
  saved trace round-trips through JSON/disk losslessly;
* **Replay determinism** — a virtual-clock harness run over a replayed
  trace produces records identical to the original run, field for
  field, and virtual TTFTs include the tick's compute cost (they are
  never zero);
* **Traffic-class threading** — the tenant tag set by the workload
  layer survives the whole lifecycle: request → timeline submit event
  → :class:`GenerationResult` → engine snapshot/restore;
* **SLO judgment** — :func:`request_compliant` applies each objective
  (normal finish, TTFT ceiling, worst inter-token gap, deadline),
  :func:`evaluate` computes attainment/goodput/error-rate per class,
  :func:`find_knee` bisects a monotone pass/fail boundary, and the
  live :class:`SLOMonitor` exports per-class labeled Prometheus series
  that merge into a fleet view.
"""

import dataclasses
import functools
import math

import numpy as np
import pytest

from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, MantKVCache
from repro.serve import (
    ArrivalProcess,
    ClassSLO,
    GenerationEngine,
    GenerationRequest,
    LengthDist,
    LoadHarness,
    ServeConfig,
    SLOMonitor,
    SLOSpec,
    TickCostModel,
    TrafficClass,
    VirtualClock,
    WorkloadSpec,
    WorkloadTrace,
    evaluate,
    find_knee,
    generate_trace,
    request_compliant,
)
from repro.serve.loadgen import RequestRecord
from repro.serve.slo import SLOReport

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=160, seed=5)
    return TransformerLM(cfg)


def two_class_spec(n_requests=24, rate=200.0, seed=0, **urgent_kw):
    urgent_kw.setdefault("priority", 5)
    urgent_kw.setdefault("deadline_s", 0.5)
    classes = (
        TrafficClass("urgent", weight=1.0,
                     prompt_len=LengthDist.fixed(6),
                     output_len=LengthDist.fixed(4), **urgent_kw),
        TrafficClass("bulk", weight=2.0,
                     prompt_len=LengthDist.uniform(4, 12),
                     output_len=LengthDist.uniform(3, 6)),
    )
    return WorkloadSpec(classes=classes,
                        arrivals=ArrivalProcess.poisson(rate),
                        n_requests=n_requests, vocab_size=VOCAB, seed=seed,
                        max_seq=160)


def run_virtual(model, trace, **kw):
    harness = LoadHarness(model, FP16KVCache,
                          ServeConfig(max_batch_size=4), clock="virtual", **kw)
    return harness.run(trace)


# ---------------------------------------------------------------------------
# Length mixtures
# ---------------------------------------------------------------------------
class TestLengthDist:
    def test_shapes_sample_in_bounds(self):
        rng = np.random.default_rng(0)
        assert LengthDist.fixed(7).sample(rng) == 7
        for _ in range(50):
            assert 3 <= LengthDist.uniform(3, 9).sample(rng) <= 9
            assert 2 <= LengthDist.lognormal(8, 0.5, lo=2, hi=32).sample(rng) <= 32
            assert LengthDist.choice([4, 8], (1.0, 0.0)).sample(rng) == 4

    def test_sampling_is_deterministic_per_kind(self):
        # Identically seeded generators draw identical sequences from
        # every kind — the property trace determinism is built on.
        for d in (LengthDist.fixed(5), LengthDist.uniform(1, 9),
                  LengthDist.lognormal(4, 0.3), LengthDist.choice([2, 3])):
            a, b = np.random.default_rng(123), np.random.default_rng(123)
            assert [d.sample(a) for _ in range(20)] \
                == [d.sample(b) for _ in range(20)]

    def test_fixed_burns_a_draw(self):
        # ``fixed`` consumes one draw like every other kind, so the
        # per-request draw *count* is shape-independent.
        rng = np.random.default_rng(123)
        LengthDist.fixed(5).sample(rng)
        burned = np.random.default_rng(123)
        burned.random()
        assert rng.integers(0, 1 << 30) == burned.integers(0, 1 << 30)

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            LengthDist("exponential")
        with pytest.raises(ValueError, match=">= 1"):
            LengthDist.fixed(0)
        with pytest.raises(ValueError, match="lo <= hi"):
            LengthDist.uniform(9, 3)
        with pytest.raises(ValueError, match="median"):
            LengthDist.lognormal(0, 0.5)
        with pytest.raises(ValueError, match="at least one"):
            LengthDist.choice([])
        with pytest.raises(ValueError, match="weights"):
            LengthDist.choice([1, 2], (1.0,))

    def test_dict_round_trip(self):
        for d in (LengthDist.fixed(5), LengthDist.uniform(2, 9),
                  LengthDist.lognormal(8, 0.4, lo=2, hi=64),
                  LengthDist.choice([3, 5], (0.2, 0.8))):
            assert LengthDist.from_dict(d.to_dict()) == d


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
class TestArrivalProcess:
    def test_poisson_schedule(self):
        rng = np.random.default_rng(0)
        times = ArrivalProcess.poisson(100.0).sample_times(rng, 500)
        assert len(times) == 500
        assert np.all(np.diff(times) > 0)
        # Mean gap ~ 1/rate (loose statistical bound at n=500).
        assert np.mean(np.diff(times)) == pytest.approx(0.01, rel=0.25)

    def test_bursty_schedule_and_mean_rate(self):
        ap = ArrivalProcess.bursty(rate_low=10.0, rate_high=90.0,
                                   dwell_low_s=3.0, dwell_high_s=1.0)
        assert ap.mean_rate == pytest.approx(30.0)
        rng = np.random.default_rng(1)
        times = ap.sample_times(rng, 400)
        assert len(times) == 400 and np.all(np.diff(times) > 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ArrivalProcess("uniform")
        with pytest.raises(ValueError, match="rate"):
            ArrivalProcess.poisson(0.0)
        with pytest.raises(ValueError, match="rates"):
            ArrivalProcess.bursty(0.0, 5.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="dwell"):
            ArrivalProcess.bursty(1.0, 5.0, 0.0, 1.0)

    def test_dict_round_trip(self):
        for ap in (ArrivalProcess.poisson(42.0),
                   ArrivalProcess.bursty(5.0, 50.0, 2.0, 0.5)):
            assert ArrivalProcess.from_dict(ap.to_dict()) == ap


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------
class TestTraceGeneration:
    def test_same_seed_bit_for_bit(self):
        spec = two_class_spec(seed=3)
        assert generate_trace(spec).to_json() == generate_trace(spec).to_json()

    def test_different_seed_differs(self):
        a = generate_trace(two_class_spec(seed=0)).to_json()
        b = generate_trace(two_class_spec(seed=1)).to_json()
        assert a != b

    def test_json_and_disk_round_trip(self, tmp_path):
        trace = generate_trace(two_class_spec())
        text = trace.to_json()
        assert WorkloadTrace.from_json(text).to_json() == text
        path = trace.save(str(tmp_path / "trace.json"))
        loaded = WorkloadTrace.load(path)
        assert loaded.to_json() == text
        assert loaded.spec == trace.spec           # provenance rides along

    def test_version_check(self):
        trace = generate_trace(two_class_spec(n_requests=2))
        text = trace.to_json().replace('"version":1', '"version":99')
        with pytest.raises(ValueError, match="version"):
            WorkloadTrace.from_json(text)

    def test_entries_sorted_unique_and_classed(self):
        trace = generate_trace(two_class_spec(n_requests=60))
        ids = [e.request_id for e in trace]
        assert len(set(ids)) == 60
        arrivals = [e.arrival_s for e in trace]
        assert arrivals == sorted(arrivals)
        counts = trace.class_counts()
        assert set(counts) == {"urgent", "bulk"}
        assert counts["bulk"] > counts["urgent"]   # weight 2 vs 1

    def test_shared_prefix_cohort(self):
        spec = two_class_spec(n_requests=40, prefix_tokens=8, prefix_pool=2)
        trace = generate_trace(spec)
        urgent = [e for e in trace if e.traffic_class == "urgent"]
        prefixes = {e.prompt[:8] for e in urgent}
        assert 1 <= len(prefixes) <= 2             # drawn from the pool
        assert all(len(e.prompt) == 8 + 6 for e in urgent)
        # The un-prefixed class is untouched.
        bulk = [e for e in trace if e.traffic_class == "bulk"]
        assert all(4 <= len(e.prompt) <= 12 for e in bulk)

    def test_max_seq_trims_worst_case(self):
        classes = (TrafficClass("big", prompt_len=LengthDist.fixed(100),
                                output_len=LengthDist.fixed(100)),)
        spec = WorkloadSpec(classes=classes,
                            arrivals=ArrivalProcess.poisson(10.0),
                            n_requests=5, vocab_size=VOCAB, max_seq=64)
        for e in generate_trace(spec):
            assert len(e.prompt) + e.max_tokens <= 64
            assert len(e.prompt) >= 1 and e.max_tokens >= 1

    def test_to_request_threads_class_knobs(self):
        spec = two_class_spec(n_requests=12, priority=5, deadline_s=0.5,
                              timeout_s=2.0, n=2, temperature=0.7)
        entry = next(e for e in generate_trace(spec)
                     if e.traffic_class == "urgent")
        req = entry.to_request()
        assert isinstance(req, GenerationRequest)
        assert req.traffic_class == "urgent"
        assert req.priority == 5
        assert req.deadline_s == 0.5 and req.timeout_s == 2.0
        assert req.n == 2
        assert req.sampling.temperature == 0.7
        assert req.sampling.seed == entry.seed     # per-request stream

    def test_greedy_when_temperature_zero(self):
        entry = next(iter(generate_trace(two_class_spec(n_requests=4))))
        assert entry.to_request().sampling.temperature == 0.0

    def test_spec_validation(self):
        good = two_class_spec()
        with pytest.raises(ValueError, match="duplicate"):
            dataclasses.replace(good, classes=good.classes + good.classes[:1])
        with pytest.raises(ValueError, match="at least one"):
            dataclasses.replace(good, classes=())
        with pytest.raises(ValueError, match="n_requests"):
            dataclasses.replace(good, n_requests=0)


# ---------------------------------------------------------------------------
# The open-loop harness (virtual clock — deterministic and fast)
# ---------------------------------------------------------------------------
class TestHarness:
    def test_virtual_run_completes_all(self, model):
        trace = generate_trace(two_class_spec())
        result = run_virtual(model, trace)
        assert len(result.records) == len(trace)
        assert all(r.completed for r in result.records)
        assert result.clock_mode == "virtual"
        assert result.duration_s >= trace.duration_s
        assert result.stats.requests_completed == len(trace)
        # Records come back in arrival order with causal timestamps.
        assert [r.request_id for r in result.records] \
            == [e.request_id for e in trace]
        for r in result.records:
            assert r.submit_s >= r.arrival_s
            assert r.finish_s >= r.submit_s
            assert r.tokens > 0

    def test_virtual_ttft_includes_tick_cost(self, model):
        # A token only exists once its forward pass has been paid for:
        # even an unloaded run must show TTFT >= the cost model's floor.
        cost = TickCostModel()
        trace = generate_trace(two_class_spec(n_requests=6, rate=5.0))
        result = run_virtual(model, trace, cost_model=cost)
        for r in result.records:
            assert r.ttft_s >= cost.base_s
            # The admission tick runs prefill + first decode, so tokens
            # 1 and 2 share its timestamp; every later gap is a full
            # tick and must carry at least the base cost.
            assert all(gap >= cost.base_s for gap in r.itl_s[1:])

    def test_replayed_trace_identical_records(self, model):
        trace = generate_trace(two_class_spec())
        replay = WorkloadTrace.from_json(trace.to_json())
        a = run_virtual(model, trace)
        b = run_virtual(model, replay)
        assert [r.to_dict() for r in a.records] \
            == [r.to_dict() for r in b.records]
        assert a.duration_s == b.duration_s

    def test_deadline_hit_recorded(self, model):
        trace = generate_trace(two_class_spec(deadline_s=10.0))
        result = run_virtual(model, trace)
        for r in result.records:
            if r.traffic_class == "urgent":
                assert r.deadline_hit is True      # generous deadline
            else:
                assert r.deadline_hit is None      # no deadline set

    def test_queue_overflow_becomes_rejected_record(self, model):
        trace = generate_trace(two_class_spec(n_requests=30, rate=5000.0))
        harness = LoadHarness(
            model, FP16KVCache,
            ServeConfig(max_batch_size=2, max_queue_len=2), clock="virtual")
        result = harness.run(trace)
        rejected = [r for r in result.records if r.finish_reason == "rejected"]
        assert rejected                            # open loop sheds load
        for r in rejected:
            assert not r.completed
            assert "QueueFullError" in r.error
        served = [r for r in result.records if r.completed]
        assert len(served) + len(rejected) == len(result.records)

    def test_wall_clock_mode_smoke(self, model):
        trace = generate_trace(two_class_spec(n_requests=6, rate=400.0))
        harness = LoadHarness(model, FP16KVCache,
                              ServeConfig(max_batch_size=4), clock="wall")
        result = harness.run(trace)
        assert all(r.completed for r in result.records)
        assert result.clock_mode == "wall"

    def test_bad_clock_mode(self, model):
        with pytest.raises(ValueError, match="clock"):
            LoadHarness(model, FP16KVCache, clock="sundial")

    def test_quantized_cache_replay(self, model):
        factory = functools.partial(MantKVCache, group_size=16, window=16)
        trace = generate_trace(two_class_spec(n_requests=10))
        a = LoadHarness(model, factory, ServeConfig(max_batch_size=4),
                        clock="virtual").run(trace)
        b = LoadHarness(model, factory, ServeConfig(max_batch_size=4),
                        clock="virtual").run(trace)
        assert [r.to_dict() for r in a.records] \
            == [r.to_dict() for r in b.records]


# ---------------------------------------------------------------------------
# Traffic-class threading through the engine
# ---------------------------------------------------------------------------
class TestTrafficClassThreading:
    def req(self, tag="gold"):
        return GenerationRequest("r0", np.arange(5), max_tokens=3,
                                 traffic_class=tag)

    def test_result_and_timeline_carry_class(self, model):
        eng = GenerationEngine(model, FP16KVCache,
                               ServeConfig(max_batch_size=2))
        eng.submit(self.req())
        while eng.has_work():
            eng.step()
        result = eng.pop_result("r0")
        assert result.traffic_class == "gold"
        submit_ev = next(e for e in result.trace if e["event"] == "submit")
        assert submit_ev["traffic_class"] == "gold"

    def test_untagged_request_has_no_class_detail(self, model):
        eng = GenerationEngine(model, FP16KVCache,
                               ServeConfig(max_batch_size=2))
        eng.submit(GenerationRequest("r0", np.arange(5), max_tokens=3))
        while eng.has_work():
            eng.step()
        result = eng.pop_result("r0")
        assert result.traffic_class is None
        submit_ev = next(e for e in result.trace if e["event"] == "submit")
        assert "traffic_class" not in submit_ev

    def test_snapshot_restore_preserves_class(self, model):
        eng = GenerationEngine(model, FP16KVCache,
                               ServeConfig(max_batch_size=2))
        eng.submit(self.req())
        eng.step()                                 # mid-flight
        eng.stop_admission()
        snap = eng.snapshot()
        restored = GenerationEngine.restore(snap, model, FP16KVCache)
        while restored.has_work():
            restored.step()
        assert restored.pop_result("r0").traffic_class == "gold"


# ---------------------------------------------------------------------------
# SLO judgment
# ---------------------------------------------------------------------------
def record(tc="urgent", finish="length", ttft=0.01, itl=(0.005,),
           deadline_hit=None, tokens=8):
    return RequestRecord(
        request_id="r", traffic_class=tc, arrival_s=0.0, submit_s=0.0,
        finish_s=1.0, ttft_s=ttft, latency_s=1.0, tokens=tokens,
        finish_reason=finish, deadline_hit=deadline_hit, itl_s=list(itl))


class TestRequestCompliance:
    SLO = ClassSLO(ttft_p99_s=0.1, inter_token_p99_s=0.05)

    def test_normal_finish_required(self):
        assert request_compliant(record(), self.SLO)
        for reason in ("timeout", "error", "cancelled", "rejected", "pending"):
            assert not request_compliant(record(finish=reason), self.SLO)

    def test_ttft_ceiling(self):
        assert not request_compliant(record(ttft=0.2), self.SLO)
        assert not request_compliant(record(ttft=float("nan")), self.SLO)

    def test_worst_gap_ceiling(self):
        assert not request_compliant(record(itl=(0.01, 0.2)), self.SLO)

    def test_deadline(self):
        assert not request_compliant(record(deadline_hit=False), self.SLO)
        assert request_compliant(record(deadline_hit=True), self.SLO)

    def test_ungoverned_class_passes_on_completion(self):
        assert request_compliant(record(ttft=99.0), None)
        assert not request_compliant(record(finish="timeout"), None)


class TestEvaluate:
    def make_result(self, records, duration=2.0):
        from repro.serve.loadgen import HarnessResult
        return HarnessResult(records=records, duration_s=duration,
                             offered_rate=len(records) / duration,
                             clock_mode="virtual", stats=None)

    def test_attainment_and_goodput(self):
        slo = SLOSpec(classes={"urgent": ClassSLO(ttft_p99_s=0.1,
                                                  attainment_target=0.5)})
        records = [record(ttft=0.01, tokens=10),
                   record(ttft=0.01, tokens=10),
                   record(ttft=0.9, tokens=10),    # TTFT bust
                   record(finish="timeout", tokens=4)]
        report = evaluate(self.make_result(records), slo)
        cr = report.classes["urgent"]
        assert cr.n_requests == 4 and cr.n_completed == 3
        assert cr.n_compliant == 2
        assert cr.attainment == pytest.approx(0.5)   # met the 0.5 target...
        rows = {r["objective"]: r for r in cr.objectives}
        # ...but the distribution p99 (0.9s) and the zero error budget
        # (1 timeout in 4) both bust, so the class still fails.
        assert rows["ttft_p99_s"]["ok"] is False
        assert rows["error_budget"]["ok"] is False
        assert not cr.ok and not report.ok
        # Goodput counts compliant tokens only: 20 tokens over 2s.
        assert report.goodput_tokens_per_s == pytest.approx(10.0)
        assert cr.error_rate == pytest.approx(0.25)

    def test_error_budget_objective(self):
        slo = SLOSpec(classes={"u": ClassSLO(error_budget=0.0,
                                             attainment_target=0.1)})
        report = evaluate(self.make_result(
            [record(tc="u"), record(tc="u", finish="timeout")]), slo)
        rows = {r["objective"]: r for r in report.classes["u"].objectives}
        assert rows["error_budget"]["ok"] is False
        assert not report.classes["u"].ok and not report.ok

    def test_inter_token_vacuous_without_gaps(self):
        slo = SLOSpec(classes={"u": ClassSLO(inter_token_p99_s=0.01)})
        report = evaluate(self.make_result([record(tc="u", itl=())]), slo)
        rows = {r["objective"]: r for r in report.classes["u"].objectives}
        assert rows["inter_token_p99_s"]["ok"] is True

    def test_report_round_trip_and_render(self):
        slo = SLOSpec(classes={"urgent": ClassSLO(ttft_p99_s=0.1)},
                      default=ClassSLO(attainment_target=0.5))
        assert SLOSpec.from_dict(slo.to_dict()).to_dict() == slo.to_dict()
        report = evaluate(self.make_result([record()]), slo)
        assert isinstance(report, SLOReport)
        d = report.to_dict()
        assert d["classes"]["urgent"]["attainment"] == 1.0
        text = report.render()
        assert "SLO scorecard" in text and "urgent" in text

    def test_slo_validation(self):
        with pytest.raises(ValueError, match="ttft_p99_s"):
            ClassSLO(ttft_p99_s=0.0)
        with pytest.raises(ValueError, match="deadline_hit_rate"):
            ClassSLO(deadline_hit_rate=1.5)
        with pytest.raises(ValueError, match="attainment_target"):
            ClassSLO(attainment_target=0.0)
        with pytest.raises(TypeError, match="ClassSLO"):
            SLOSpec(classes={"u": 0.95})


class TestFindKnee:
    @staticmethod
    def fake_runner(threshold):
        calls = []

        def run_at(rate):
            calls.append(rate)
            ok = rate <= threshold
            return type("R", (), {"ok": ok})()

        return run_at, calls

    def test_bisects_to_knee(self):
        run_at, calls = self.fake_runner(300.0)
        out = find_knee(run_at, 50.0, 1600.0, iters=8)
        assert out["saturated"]
        # The knee is the highest passing probe; bracket width 1550 over
        # 8 halvings localizes it to ~6 req/s below the true threshold.
        assert 290.0 <= out["knee_rate"] <= 300.0
        assert len(out["probes"]) == len(calls) == 10   # 2 ends + 8 steps
        for p in out["probes"]:
            assert p["ok"] == (p["rate"] <= 300.0)

    def test_lo_already_failing(self):
        run_at, _ = self.fake_runner(10.0)
        out = find_knee(run_at, 50.0, 100.0, iters=4)
        assert out["knee_rate"] == 0.0 and out["saturated"]

    def test_hi_still_passing(self):
        run_at, _ = self.fake_runner(1e9)
        out = find_knee(run_at, 50.0, 100.0, iters=4)
        assert out["knee_rate"] == 100.0 and not out["saturated"]

    def test_bad_bracket(self):
        run_at, _ = self.fake_runner(1.0)
        with pytest.raises(ValueError, match="rate_lo"):
            find_knee(run_at, 100.0, 50.0)


class TestSLOMonitor:
    SPEC = SLOSpec(classes={"urgent": ClassSLO(ttft_p99_s=0.1)})

    def test_live_counts_and_attainment(self):
        mon = SLOMonitor(self.SPEC)
        mon.record(record(ttft=0.01))
        mon.record(record(ttft=0.5))
        mon.record(record(finish="timeout"))
        assert mon.live_attainment("urgent") == pytest.approx(1 / 3)
        assert mon.live_attainment("never-seen") == 1.0
        point = mon.sample(1.0)
        assert point["classes"]["urgent"]["total"] == 3
        assert mon.samples[-1] is point

    def test_prometheus_and_merge(self):
        mon = SLOMonitor(self.SPEC)
        mon.record(record(ttft=0.01, tokens=10))
        mon.record(record(tc="bulk", ttft=0.02, tokens=5))
        text = mon.to_prometheus()
        assert 'repro_slo_requests_total{class="urgent"} 1' in text
        assert 'repro_slo_requests_total{class="bulk"} 1' in text
        fleet = mon.merged()
        assert fleet.get("requests_total").value == 2
        assert fleet.get("tokens_compliant").value == 15

    def test_harness_feeds_monitor(self, model):
        mon = SLOMonitor(self.SPEC)
        trace = generate_trace(two_class_spec(n_requests=10))
        harness = LoadHarness(model, FP16KVCache,
                              ServeConfig(max_batch_size=4), clock="virtual")
        harness.attach_monitor(mon)
        result = harness.run(trace)
        assert result.monitor is mon
        total = sum(mon.live_attainment(c) is not None and
                    mon.registry(c).get("requests_total").value
                    for c in ("urgent", "bulk"))
        assert total == len(result.records)
        assert mon.samples and mon.samples[-1]["t"] == result.duration_s


# ---------------------------------------------------------------------------
# End-to-end: harness + SLO on a virtual clock
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_scorecard_from_virtual_run(self, model):
        trace = generate_trace(two_class_spec(n_requests=20))
        result = run_virtual(model, trace)
        spec = SLOSpec(classes={
            "urgent": ClassSLO(ttft_p99_s=5.0, deadline_hit_rate=0.5),
            "bulk": ClassSLO(ttft_p99_s=5.0),
        })
        report = evaluate(result, spec)
        assert report.ok
        assert set(report.classes) == {"urgent", "bulk"}
        assert report.attainment == 1.0
        assert report.goodput_tokens_per_s > 0
        # Evaluation is a pure function of (records, spec).
        again = evaluate(result, spec)
        assert again.to_dict() == report.to_dict()
