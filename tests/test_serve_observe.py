"""Observability tests: metrics registry, tick tracing, timelines.

Gates, per the PR acceptance criteria:

* the metrics registry is the single source of truth behind
  ``EngineStats``: every integer stats field maps to a registered
  metric (``EngineStats.STATS_METRICS``) whose value it equals, the
  Prometheus text exposition is well-formed, and replica registries
  merge into fleet aggregates;
* the tick tracer records a well-formed span tree — ``tick`` roots,
  phase children nested by time containment, ``forward``/``append``
  spans present on decode ticks — and exports valid Chrome-trace JSON
  (``json.loads`` round-trip, ``ph``/``ts``/``dur`` keys, the metrics
  snapshot and request timelines riding along);
* per-request timelines record lifecycle events in order for the fault
  matrix's scenarios (timeout, transient retry, preemption), with
  fired injected faults joined against the injector's log by index;
* determinism: observe on vs off leaves token output bit-identical for
  every cache type on both storage backends (the tracer clock is
  separate from the engine clock by design), and ``observe=False`` is
  a true no-op — no spans, no timelines, ``result.trace is None``;
* ``wall_elapsed_s`` includes idle gaps the busy-time ``elapsed_s``
  excludes, both on the injectable clock;
* the ``examples/obs_report.py`` dashboard renders an exported trace.
"""

import functools
import json
import math
import os
import subprocess
import sys

import dataclasses

import numpy as np
import pytest

from serve_testlib import assert_storage_baseline, single_stream

from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    FORWARD,
    FINISH_ERROR,
    FINISH_TIMEOUT,
    Counter,
    EngineStats,
    FaultInjector,
    Gauge,
    GenerationEngine,
    GenerationRequest,
    Histogram,
    MetricsRegistry,
    RequestTrace,
    ServeConfig,
    TickTracer,
)

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}
BACKENDS = ["arena", "paged"]


def _config(backend, **kw):
    kw.setdefault("max_batch_size", 4)
    if backend in ("paged", "chunked"):
        kw.setdefault("paged", True)
        kw.setdefault("block_tokens", 16)
    if backend == "chunked":
        kw.setdefault("prefill_chunk_tokens", 16)
        kw.setdefault("max_tokens_per_tick", 32)
    return ServeConfig(**kw)


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=160, seed=5)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi)))
            for _ in range(n)]


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_engine(model, backend, cache="fp16", **kwargs):
    cfg_kw = {k: kwargs.pop(k) for k in list(kwargs)
              if k in ServeConfig.__dataclass_fields__}
    return GenerationEngine(
        model, CACHE_FACTORIES[cache], _config(backend, **cfg_kw), **kwargs)


def requests(ps, max_tokens=6, **kw):
    return [GenerationRequest(f"r{i}", p, max_tokens=max_tokens, **kw)
            for i, p in enumerate(ps)]


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs", "requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("depth", fn=lambda: 7)
        assert g.value == 7
        g2 = reg.gauge("manual")
        g2.set(3.5)
        assert g2.value == 3.5
        h = reg.histogram("lat")
        for v in (0.001, 0.01, 0.01, 1.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(1.021)
        assert h.max_value == 1.0
        assert h.mean == pytest.approx(1.021 / 4)
        assert h.percentile(50) == pytest.approx(0.01)
        assert sum(h.counts) == 4
        assert len(reg) == 4 and "lat" in reg

    def test_histogram_empty_percentile_nan(self):
        h = Histogram("h")
        assert math.isnan(h.percentile(50))
        assert h.max_value == 0.0 and h.mean == 0.0

    def test_duplicate_name_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_prometheus_exposition(self):
        reg = MetricsRegistry(labels={"replica": "r0"})
        reg.counter("reqs", "requests served").inc(3)
        reg.gauge("depth", fn=lambda: 2)
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert '# TYPE repro_serve_reqs counter' in text
        assert 'repro_serve_reqs{replica="r0"} 3' in text
        assert 'repro_serve_depth{replica="r0"} 2' in text
        # Cumulative buckets: 1 sample <= 0.1, still 1 <= 1.0, 2 at +Inf.
        assert 'repro_serve_lat_bucket{replica="r0",le="0.1"} 1' in text
        assert 'repro_serve_lat_bucket{replica="r0",le="1"} 1' in text
        assert 'repro_serve_lat_bucket{replica="r0",le="+Inf"} 2' in text
        assert 'repro_serve_lat_count{replica="r0"} 2' in text

    def test_merge_aggregates(self):
        a, b = MetricsRegistry(labels={"replica": "a"}), MetricsRegistry()
        a.counter("reqs").inc(2)
        b.counter("reqs").inc(3)
        a.gauge("depth", fn=lambda: 1)
        b.gauge("depth", fn=lambda: 4)
        ha, hb = a.histogram("lat"), b.histogram("lat")
        ha.observe(0.1)
        hb.observe(0.3)
        hb.observe(0.5)
        merged = MetricsRegistry.merge([a, b], labels={"fleet": "all"})
        assert merged.get("reqs").value == 5
        assert merged.get("depth").value == 5      # snapshot sum
        h = merged.get("lat")
        assert h.count == 3 and h.sum == pytest.approx(0.9)
        assert h.max_value == 0.5
        assert sorted(h.reservoir) == [0.1, 0.3, 0.5]

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0,))
        b.histogram("lat", buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket bounds"):
            MetricsRegistry.merge([a, b])

    def test_merge_empty_list_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            MetricsRegistry.merge([])

    def test_merge_empty_registries(self):
        # Registries with no instruments fold into an empty aggregate.
        merged = MetricsRegistry.merge([MetricsRegistry(), MetricsRegistry()])
        assert list(merged) == []
        assert merged.to_prometheus().strip() == ""

    def test_merge_disjoint_metric_sets(self):
        # A metric present in only some replicas keeps its value; the
        # replicas that never registered it contribute nothing (not 0
        # observations that would skew histogram counts).
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only_a").inc(2)
        b.counter("only_b").inc(7)
        b.histogram("lat").observe(0.5)
        merged = MetricsRegistry.merge([a, b])
        assert merged.get("only_a").value == 2
        assert merged.get("only_b").value == 7
        assert merged.get("lat").count == 1
        assert {m.name for m in merged} == {"only_a", "only_b", "lat"}

    def test_merge_reservoir_pooling_beyond_bound(self):
        # Concatenated reservoirs stay bounded by maxlen: the merged
        # window keeps the most recent samples while bucket counts stay
        # exact over everything observed.
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", reservoir=4)
        hb = b.histogram("lat", reservoir=4)
        for v in (0.1, 0.2, 0.3, 0.4):
            ha.observe(v)
        for v in (0.5, 0.6, 0.7, 0.8):
            hb.observe(v)
        merged = MetricsRegistry.merge([a, b])
        h = merged.get("lat")
        assert h.count == 8                      # exact, from buckets
        assert h.reservoir.maxlen == 4           # bound preserved
        assert list(h.reservoir) == [0.5, 0.6, 0.7, 0.8]  # newest win
        assert h.percentile(50) == pytest.approx(0.65)

    def test_prometheus_label_value_escaping(self):
        # Backslash, double-quote and newline must all be escaped in
        # label values per the Prometheus text exposition format —
        # backslash first, so the others don't get double-escaped.
        reg = MetricsRegistry(labels={
            "path": 'C:\\tmp\\"x"',
            "note": "line1\nline2",
        })
        reg.counter("reqs").inc(1)
        text = reg.to_prometheus()
        # Labels render sorted by key: note, then path.
        assert ('repro_serve_reqs{note="line1\\nline2",'
                'path="C:\\\\tmp\\\\\\"x\\""} 1') in text
        # The exposition itself stays one line per sample.
        sample_lines = [ln for ln in text.splitlines()
                        if ln and not ln.startswith("#")]
        assert len(sample_lines) == 1

    def test_prometheus_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "first\nsecond \\ back")
        text = reg.to_prometheus()
        assert "# HELP repro_serve_c first\\nsecond \\\\ back" in text

    def test_histogram_fraction_below(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        assert h.fraction_below(0.1) == 1.0      # vacuous when empty
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.fraction_below(0.1) == pytest.approx(1 / 3)
        assert h.fraction_below(1.0) == pytest.approx(2 / 3)
        assert h.fraction_below(0.5) == pytest.approx(1 / 3)  # conservative
        # Samples past the last bound live in +Inf; still conservative.
        assert h.fraction_below(10.0) == pytest.approx(2 / 3)


# ---------------------------------------------------------------------------
# EngineStats <-> registry consistency
# ---------------------------------------------------------------------------
class TestStatsRegistry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_stats_field_reads_its_metric(self, model, backend):
        eng = make_engine(model, backend)
        eng.generate(requests(prompts(6)))
        stats = eng.stats()
        for field, metric in EngineStats.STATS_METRICS.items():
            assert metric in eng.metrics, f"{metric} not registered"
            assert getattr(stats, field) == eng.metrics.get(metric).value, (
                f"stats.{field} drifted from registry metric {metric}"
            )

    def test_every_integer_field_is_mapped(self, model):
        eng = make_engine(model, "arena")
        eng.generate(requests(prompts(3)))
        stats = eng.stats()
        for f in dataclasses.fields(EngineStats):
            value = getattr(stats, f.name)
            if isinstance(value, int):
                assert f.name in EngineStats.STATS_METRICS, (
                    f"integer stats field {f.name} has no registry metric"
                )

    def test_prometheus_export_from_engine(self, model):
        eng = make_engine(model, "paged",
                          metrics=MetricsRegistry(labels={"replica": "r3"}))
        eng.generate(requests(prompts(4)))
        text = eng.metrics.to_prometheus()
        tokens = eng.stats().tokens_generated
        assert f'repro_serve_tokens_generated{{replica="r3"}} {tokens}' in text
        assert "# TYPE repro_serve_ttft_seconds histogram" in text
        assert "repro_serve_pool_blocks_free" in text

    def test_fleet_merge_across_engines(self, model):
        engines = [
            make_engine(model, "arena",
                        metrics=MetricsRegistry(labels={"replica": f"r{i}"}))
            for i in range(2)
        ]
        for i, eng in enumerate(engines):
            eng.generate(requests(prompts(3, seed=i)))
        fleet = MetricsRegistry.merge([e.metrics for e in engines])
        total = sum(e.stats().tokens_generated for e in engines)
        assert fleet.get("tokens_generated").value == total
        assert fleet.get("requests_submitted").value == 6

    def test_derived_summary_section(self, model):
        eng = make_engine(model, "paged")
        eng.generate(requests(prompts(5)))
        summary = eng.stats().summary()
        derived = summary["derived"]
        assert set(derived) == {"tokens_per_s", "occupancy_pct",
                                "prefix_hit_ratio", "retry_rate"}
        stats = eng.stats()
        assert derived["occupancy_pct"] == pytest.approx(
            100.0 * stats.mean_batch_occupancy / stats.batch_lanes)
        assert derived["retry_rate"] == 0.0
        assert 0.0 <= derived["prefix_hit_ratio"] <= 1.0
        assert json.loads(json.dumps(summary))["derived"] == derived

    def test_derived_zero_denominators(self):
        # A blank stats object must not divide by zero.
        blank = EngineStats(
            scheduler_policy="fcfs", requests_submitted=0,
            requests_completed=0, requests_queued=0, requests_running=0,
            requests_rejected=0, requests_cancelled=0, requests_timed_out=0,
            requests_failed=0, retries=0, snapshot_restores=0,
            tokens_generated=0, decode_ticks=0, mean_batch_occupancy=0.0,
            batch_lanes=0, elapsed_s=0.0, wall_elapsed_s=0.0,
            tokens_per_s=0.0, mean_queue_latency_s=0.0,
            max_queue_latency_s=0.0, cache_slots=0,
            cache_slots_high_water=0, preemptions=0, prefix_hit_tokens=0,
            prefill_chunks=0, prefill_tokens=0, ttft_p50_s=float("nan"),
            ttft_p95_s=float("nan"), inter_token_p50_s=float("nan"),
            inter_token_p95_s=float("nan"),
        )
        derived = blank.summary()["derived"]
        assert all(v == 0.0 for v in derived.values())

    def test_wall_elapsed_includes_idle_gaps(self, model):
        clk = ManualClock()
        eng = make_engine(model, "arena", clock=clk)
        eng.submit(requests(prompts(1))[0])
        while eng.has_work():
            clk.advance(1.0)     # 1 s of "idle" before each tick
            eng.step()
        stats = eng.stats()
        # Busy time only sees the zero-width interval inside step();
        # wall time spans submit -> last tick including the idle gaps.
        assert stats.elapsed_s == 0.0
        assert stats.wall_elapsed_s > 0.0
        assert stats.wall_elapsed_s >= stats.elapsed_s

    def test_queue_latency_on_injectable_clock(self, model):
        clk = ManualClock()
        eng = make_engine(model, "arena", clock=clk, max_batch_size=1)
        for r in requests(prompts(2, lo=4, hi=5), max_tokens=2):
            eng.submit(r)
            clk.advance(0.5)     # r1 submitted 0.5 s after r0
        while eng.has_work():
            clk.advance(0.25)
            eng.step()
        stats = eng.stats()
        # Both latencies measured on the manual clock: r0 admitted at
        # the first tick, r1 waited for r0's lane.
        assert stats.max_queue_latency_s > 0.0
        assert stats.mean_queue_latency_s > 0.0
        assert stats.max_queue_latency_s >= stats.mean_queue_latency_s


# ---------------------------------------------------------------------------
# Tick tracing
# ---------------------------------------------------------------------------
class TestTickTrace:
    def test_span_tree_well_formed(self, model):
        eng = make_engine(model, "chunked")
        eng.generate(requests(prompts(4, lo=20, hi=40), max_tokens=5))
        records = eng.trace.spans()
        ticks = eng.trace.spans("tick")
        assert ticks, "no tick spans recorded"
        for name in ("sweep", "admit", "plan", "forward", "append",
                     "sample", "finish"):
            assert eng.trace.spans(name), f"no {name!r} spans"
        assert eng.trace.spans("pack_prefill"), "chunked run packed no chunks"
        # Containment: every non-root span lies inside exactly the
        # tick whose interval covers it; depths nest monotonically.
        for name, t0, t1, depth, _ in records:
            assert t1 >= t0
            if name == "tick":
                assert depth == 0
                continue
            assert depth >= 1
            covering = [(a, b) for _, a, b, d, _ in ticks if a <= t0 and t1 <= b]
            assert covering, f"{name} span outside every tick"
        # No two same-depth spans overlap (single-threaded engine).
        by_depth: dict = {}
        for _, t0, t1, depth, _ in records:
            by_depth.setdefault(depth, []).append((t0, t1))
        for spans in by_depth.values():
            spans.sort()
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 <= b0, "same-depth spans overlap"

    def test_append_nested_in_forward(self, model):
        eng = make_engine(model, "arena")
        eng.generate(requests(prompts(2)))
        forwards = eng.trace.spans("forward")
        for _, t0, t1, depth, _ in eng.trace.spans("append"):
            assert any(a <= t0 and t1 <= b for _, a, b, d, _ in forwards
                       if d == depth - 1), "append span outside forward"

    def test_chrome_trace_roundtrip(self, model, tmp_path):
        eng = make_engine(model, "chunked")
        eng.generate(requests(prompts(3, lo=20, hi=30)))
        path = str(tmp_path / "trace.json")
        assert eng.trace.save(path) == path
        trace = json.loads(open(path).read())
        events = trace["traceEvents"]
        assert events and trace["displayTimeUnit"] == "ms"
        for ev in events:
            assert ev["ph"] in ("X", "i")
            assert "ts" in ev and "name" in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        assert {"forward", "append"} <= {e["name"] for e in events}
        # The extra sections ride along and mirror live state.
        assert trace["metrics"]["metrics"]["tokens_generated"]["value"] \
            == eng.stats().tokens_generated
        assert set(trace["requestTimelines"]) == {f"r{i}" for i in range(3)}

    def test_ring_buffer_bounded(self):
        tracer = TickTracer(capacity=8)
        for i in range(50):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.records()) == 8
        assert tracer.spans()[0][0] == "s42"   # oldest dropped first
        tracer.clear()
        assert tracer.records() == []

    def test_manual_trace_clock(self, model):
        clk = ManualClock()
        eng = make_engine(model, "arena", trace_clock=clk)
        # Each span reads the tracer clock twice; advance between ticks.
        eng.submit(requests(prompts(1))[0])
        while eng.has_work():
            eng.step()
            clk.advance(1.0)
        for _, t0, t1, _, _ in eng.trace.spans():
            assert t1 >= t0


# ---------------------------------------------------------------------------
# Request timelines
# ---------------------------------------------------------------------------
class TestRequestTimelines:
    def test_normal_lifecycle_order(self, model):
        eng = make_engine(model, "chunked")
        ps = prompts(1, lo=40, hi=41)
        handle = eng.submit(GenerationRequest("r0", ps[0], max_tokens=4))
        eng.generate()
        names = handle.trace().names()
        assert names[0] == "submit"
        assert names[1] == "admit"
        assert names.count("prefill_chunk") >= 2     # 40 tokens, 16/chunk
        assert names[-1] == "finish"
        assert names.index("first_token") < names.index("finish")
        events = handle.trace().to_events()
        assert events[0]["prompt_tokens"] == 40
        assert events[-1]["reason"] == "length"
        # Timestamps are monotone non-decreasing.
        ts = [e["t"] for e in events]
        assert ts == sorted(ts)
        # The serialized copy rides the result and survives JSON.
        result = eng.result("r0")
        assert [e["event"] for e in json.loads(json.dumps(result.trace))] \
            == names

    def test_timeout_timeline(self, model):
        clk = ManualClock()
        eng = make_engine(model, "arena", clock=clk, max_batch_size=1)
        rs = requests(prompts(2, lo=4, hi=5), max_tokens=50)
        eng.submit(rs[0])
        eng.submit(GenerationRequest("late", rs[1].prompt, max_tokens=50,
                                     timeout_s=1.0))
        while eng.has_work():
            clk.advance(0.4)
            eng.step()
        assert eng.result("late").finish_reason == FINISH_TIMEOUT
        names = eng.request_trace("late").names()
        # Never admitted (one lane, r0 decodes 50 tokens): queued ->
        # timeout finish with no admit/first_token between.
        assert names[0] == "submit" and names[-1] == "finish"
        assert eng.request_trace("late").events[-1]["reason"] == FINISH_TIMEOUT
        assert "first_token" not in names
        assert_storage_baseline(eng)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retry_timeline_joins_fault_log(self, model, backend):
        injector = FaultInjector().arm(FORWARD, "r0", after=3, transient=True)
        eng = make_engine(model, backend, faults=injector)
        eng.generate(requests(prompts(4), max_tokens=8))
        trace = eng.request_trace("r0")
        names = trace.names()
        assert "fault" in names and "retry" in names
        assert names.index("fault") < names.index("retry")
        # Re-admission after the retry, then a resumed finish.
        assert names.count("admit") == 2
        assert names[-1] == "finish"
        # The joined fault indexes the injector's fired-fault log.
        fault_ev = trace.events[names.index("fault")]
        site, rid = injector.log[fault_ev["log_index"]]
        assert (site, rid) == (FORWARD, "r0")
        # ... and the tick trace carries the matching instant marker.
        instants = eng.trace.instants("fault")
        assert len(instants) == 1
        assert instants[0][4]["request_id"] == "r0"
        assert instants[0][4]["log_index"] == fault_ev["log_index"]
        assert eng.result("r0").finish_reason == "length"
        assert_storage_baseline(eng)

    def test_preemption_timeline(self, model):
        # A pool small enough that concurrent decodes collide.
        eng = make_engine(model, "paged", num_blocks=6, block_tokens=16,
                          max_batch_size=3)
        eng.generate(requests(prompts(3, lo=10, hi=12), max_tokens=30))
        assert eng.stats().preemptions > 0
        preempted = [rid for rid in ("r0", "r1", "r2")
                     if "preempt" in eng.request_trace(rid).names()]
        assert preempted, "no request recorded its preemption"
        for rid in preempted:
            names = eng.request_trace(rid).names()
            # Preempt -> re-admission -> eventual finish, in order.
            assert names.index("preempt") < len(names) - 1
            assert "admit" in names[names.index("preempt"):]
            assert names[-1] == "finish"
        assert_storage_baseline(eng)

    def test_quarantined_callback_timeline(self, model):
        def bad(_event):
            raise RuntimeError("client went away")

        eng = make_engine(model, "arena")
        eng.submit(requests(prompts(1))[0], on_token=bad)
        eng.generate()
        names = eng.request_trace("r0").names()
        assert "callback_error" in names
        assert eng.result("r0").finish_reason == FINISH_ERROR

    def test_pop_result_evicts_timeline(self, model):
        eng = make_engine(model, "arena")
        handle = eng.submit(requests(prompts(1))[0])
        eng.generate()
        assert handle.trace() is not None
        result = eng.pop_result("r0")
        assert handle.trace() is None        # live timeline evicted
        assert result.trace[-1]["event"] == "finish"   # copy retained

    def test_timeline_bounded(self):
        trace = RequestTrace("r0", max_events=4)
        for i in range(10):
            trace.add("tick", float(i))
        assert len(trace) == 4 and trace.dropped == 6
        assert trace.duration_s == 3.0


# ---------------------------------------------------------------------------
# observe=False: a true no-op
# ---------------------------------------------------------------------------
class TestObserveOff:
    def test_no_spans_no_timelines(self, model):
        eng = make_engine(model, "paged", observe=False)
        handle = eng.submit(requests(prompts(1))[0])
        eng.generate()
        assert eng.trace.records() == []
        assert handle.trace() is None
        assert eng.result("r0").trace is None
        # The registry still carries the stats (stats() needs it).
        assert eng.stats().requests_completed == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("cache", list(CACHE_FACTORIES))
    def test_tokens_bit_identical_on_off(self, model, backend, cache):
        ps = prompts(5, seed=9, lo=8, hi=16)
        outs = {}
        for observe in (True, False):
            eng = make_engine(model, backend, cache=cache, observe=observe)
            eng.generate(requests(ps, max_tokens=8))
            outs[observe] = [eng.result(f"r{i}").tokens for i in range(5)]
        assert outs[True] == outs[False]
        # And both match the single-stream reference.
        factory = CACHE_FACTORIES[cache]
        for i, p in enumerate(ps):
            assert outs[True][i] == single_stream(model, factory, p, 8)

    def test_on_off_identical_under_faults(self, model):
        """The fault injector's clock-read counting must not see the
        tracer: the same chaos seed fires the same faults either way."""
        ps = prompts(4, seed=3)
        logs, finishes = [], []
        for observe in (True, False):
            injector = FaultInjector(seed=11).chaos(FORWARD, 0.05)
            eng = make_engine(model, "paged", faults=injector,
                              observe=observe, max_retries=1)
            eng.generate(requests(ps, max_tokens=6))
            logs.append(list(injector.log))
            finishes.append([eng.result(f"r{i}").finish_reason
                             for i in range(4)])
        assert logs[0] == logs[1]
        assert finishes[0] == finishes[1]


# ---------------------------------------------------------------------------
# The dashboard CLI
# ---------------------------------------------------------------------------
class TestObsReport:
    def test_report_renders_exported_trace(self, model, tmp_path):
        injector = FaultInjector().arm(FORWARD, "r0", after=2, transient=True)
        eng = make_engine(model, "chunked", faults=injector)
        eng.generate(requests(prompts(3, lo=20, hi=30), max_tokens=6))
        path = str(tmp_path / "trace.json")
        eng.trace.save(path)

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        proc = subprocess.run(
            [sys.executable, os.path.join(repo, "examples", "obs_report.py"),
             path, "--top", "2"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "where tick time goes" in out
        assert "forward" in out and "append" in out
        assert "metric distributions" in out
        assert "ttft_seconds" in out
        assert "fired faults" in out and "site=forward" in out
        assert "request timelines" in out and "<-- fault" in out

    def test_report_json_output(self, model, tmp_path):
        eng = make_engine(model, "arena")
        eng.generate(requests(prompts(3), max_tokens=4))
        path = str(tmp_path / "trace.json")
        eng.trace.save(path)

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        proc = subprocess.run(
            [sys.executable, os.path.join(repo, "examples", "obs_report.py"),
             path, "--json", "--top", "2"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)   # machine-readable end to end
        assert report["spans"] > 0
        assert report["request_timelines"] == 3
        phases = {row["phase"] for row in report["phases"]}
        assert {"tick", "forward", "sample"} <= phases
        for row in report["phases"]:
            assert row["count"] > 0 and row["total_s"] >= row["mean_s"] >= 0
        assert "ttft_seconds" in report["histograms"]
        assert report["counters"]["requests_completed"] == 3
        assert len(report["slowest_requests"]) == 2
        for entry in report["slowest_requests"]:
            assert entry["events"][0]["event"] == "submit"
