"""Tests for the paged KV-cache subsystem (repro.serve.paging).

The load-bearing properties:

* paged greedy decode is token-for-token identical to the
  contiguous-arena engine for FP16/INT4/MANT4 caches (with and without
  prefix sharing);
* block lifecycle is leak-free: releases return every non-shared page,
  prefix-shared pages survive the donor finishing, and a recycled
  block serves a fresh sequence with no state leakage;
* copy-on-write is a true copy: mutating a forked sequence never
  perturbs the other's cache contents or logits;
* block-aware admission admits on actually-free pages and preempts
  (recompute-on-resume) instead of wedging on pool exhaustion.
"""

import functools

import numpy as np
import pytest

from repro.model import layers as L
from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    BlockPool,
    GenerationEngine,
    GenerationRequest,
    PagedKVCache,
    PoolExhausted,
    ServeConfig,
)
from repro.serve.paging import validate_block_compat

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=192, seed=5)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi))) for _ in range(n)]


def drive(cache, rng, heads=2, seq=20, dh=16, extra=12, scale=1.0):
    k = rng.normal(size=(heads, seq, dh)) * scale
    v = rng.normal(size=(heads, seq, dh)) * scale
    cache.prefill(k, v)
    for _ in range(extra):
        cache.append(rng.normal(size=(heads, dh)) * scale,
                     rng.normal(size=(heads, dh)) * scale)


def gathered(view):
    """Dense array from either a paged view or a plain ndarray."""
    return view.gather() if hasattr(view, "gather") else view


# ======================================================================
# Cache-level equivalence: paged storage == flat storage, bit for bit
# ======================================================================
class TestPagedCacheEquivalence:
    @pytest.mark.parametrize("name", list(CACHE_FACTORIES))
    @pytest.mark.parametrize("block_tokens", [16, 32])
    def test_paged_cache_matches_standalone(self, name, block_tokens):
        factory = CACHE_FACTORIES[name]
        pool = BlockPool(n_layers=2, block_tokens=block_tokens, num_blocks=16)
        lease_a, lease_b = pool.acquire(factory), pool.acquire(factory)
        solo = factory()
        drive(solo, np.random.default_rng(0))
        drive(lease_a.caches[0], np.random.default_rng(0))
        drive(lease_b.caches[0], np.random.default_rng(1), scale=3.0)
        assert np.array_equal(gathered(lease_a.caches[0].keys()), solo.keys())
        assert np.array_equal(gathered(lease_a.caches[0].values()), solo.values())
        assert lease_a.caches[0].seq_len == solo.seq_len

    def test_multi_page_growth_allocates_on_demand(self):
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=8)
        lease = pool.acquire(FP16KVCache)
        cache = lease.caches[0]
        rng = np.random.default_rng(2)
        drive(cache, rng, seq=10, extra=15)       # 25 tokens -> 4 pages
        assert cache.n_pages == 4
        assert pool.blocks_in_use == 4
        lease.release()
        assert pool.blocks_in_use == 0

    def test_gather_is_zero_copy_for_consecutive_pages(self):
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=8)
        lease = pool.acquire(FP16KVCache)
        cache = lease.caches[0]
        drive(cache, np.random.default_rng(3), seq=20, extra=0)
        arr = cache.keys().gather()
        slab = pool._slabs[(0, "k")]
        assert np.shares_memory(arr, slab)        # consecutive ids: view
        assert not arr.flags.writeable

    def test_gather_handles_non_consecutive_pages(self):
        # 4-block pool, two interleaved growers: the second sequence's
        # successor block is taken, forcing a non-contiguous table.
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=4,
                         enable_prefix_cache=False)
        a, b = pool.acquire(FP16KVCache), pool.acquire(FP16KVCache)
        rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(5)
        drive(a.caches[0], rng_a, seq=8, extra=0)
        drive(b.caches[0], rng_b, seq=8, extra=0)
        for _ in range(8):                        # both grow a second page
            a.caches[0].append(rng_a.normal(size=(2, 16)),
                               rng_a.normal(size=(2, 16)))
            b.caches[0].append(rng_b.normal(size=(2, 16)),
                               rng_b.normal(size=(2, 16)))
        tables = [a.caches[0].table.blocks, b.caches[0].table.blocks]
        assert any(blk != list(range(blk[0], blk[0] + len(blk)))
                   for blk in tables)             # at least one lost the fast path
        ref = FP16KVCache()
        drive(ref, np.random.default_rng(5), seq=8, extra=8)
        assert np.array_equal(gathered(b.caches[0].keys()), ref.keys())
        assert np.array_equal(gathered(b.caches[0].values()), ref.values())

    def test_attention_gather_path_bit_identical(self):
        """cached_attention_fwd over a paged view == over the dense copy."""
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=8)
        lease = pool.acquire(FP16KVCache)
        cache = lease.caches[0]
        drive(cache, np.random.default_rng(6), seq=13, extra=5)
        q = np.random.default_rng(7).normal(size=(2, 1, 16))
        out_paged = L.cached_attention_fwd(q, cache.keys(), cache.values(),
                                           offset=cache.seq_len - 1)
        dense_k = np.array(cache.keys().gather())
        dense_v = np.array(cache.values().gather())
        out_dense = L.cached_attention_fwd(q, dense_k, dense_v,
                                           offset=cache.seq_len - 1)
        assert np.array_equal(out_paged, out_dense)

    def test_window_straddling_block_size_rejected(self):
        cache = MantKVCache(group_size=16, window=16)
        with pytest.raises(ValueError, match="multiple of the MANT"):
            validate_block_compat(cache, 24)
        validate_block_compat(cache, 32)          # multiple: fine

    def test_tail_spanning_pages_rejected(self):
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=8)
        lease = pool.acquire(FP16KVCache)
        cache = lease.caches[0]
        drive(cache, np.random.default_rng(8), seq=12, extra=0)
        with pytest.raises(ValueError, match="page boundary"):
            cache.inner._k.tail(6)                # [6, 12) straddles page 0/1


# ======================================================================
# Block lifecycle: ref counts, recycling, prefix sharing, COW
# ======================================================================
class TestBlockLifecycle:
    def test_release_returns_blocks_no_leakage(self):
        pool = BlockPool(n_layers=2, block_tokens=8, num_blocks=6,
                         enable_prefix_cache=False)
        lease = pool.acquire(FP16KVCache)
        for cache in lease.caches:
            drive(cache, np.random.default_rng(9), seq=10, extra=0)
        assert pool.blocks_in_use == 2            # one table covers all layers
        lease.release()
        assert pool.blocks_available == 6
        with pytest.raises(RuntimeError, match="already released"):
            lease.release()
        # A fresh lease over recycled blocks sees none of the old state.
        fresh = pool.acquire(FP16KVCache)
        solo = FP16KVCache()
        drive(fresh.caches[0], np.random.default_rng(10), seq=5, extra=3)
        drive(solo, np.random.default_rng(10), seq=5, extra=3)
        assert np.array_equal(gathered(fresh.caches[0].keys()), solo.keys())

    def test_prefix_sharing_dedups_and_survives_donor(self, model):
        """Shared pages outlive the donor request; the borrower's output
        is unchanged by the donor finishing and releasing first."""
        rng = np.random.default_rng(11)
        shared = rng.integers(0, VOCAB, size=32)
        donor = GenerationRequest("donor", shared, max_tokens=2)
        borrower = GenerationRequest(
            "borrower", np.concatenate([shared, rng.integers(0, VOCAB, size=5)]),
            max_tokens=10,
        )
        factory = CACHE_FACTORIES["mant4"]
        eng = GenerationEngine(model, factory, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=16))
        res = eng.generate([donor, borrower])     # donor finishes first
        assert eng.pool.prefill_pages_hit == 2    # borrower reused both pages
        assert eng.pool.blocks_in_use == 0        # all refs returned at the end
        ref = GenerationEngine(model, factory, ServeConfig(max_batch_size=1))
        ref_res = ref.generate(
            [GenerationRequest("b", borrower.prompt, max_tokens=10)])
        assert res["borrower"].tokens == ref_res["b"].tokens

    def test_prefix_cache_resurrects_after_donor_release(self, model):
        """Hash-retained blocks serve hits even after every ref dropped."""
        rng = np.random.default_rng(12)
        prompt = rng.integers(0, VOCAB, size=32)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=1, paged=True, block_tokens=16))
        eng.generate([GenerationRequest("first", prompt, max_tokens=2)])
        assert eng.pool.blocks_in_use == 0
        eng.generate([GenerationRequest("second", prompt, max_tokens=2)])
        assert eng.pool.prefill_pages_hit == 2
        assert (eng.result("first").tokens[:2]
                == eng.result("second").tokens[:2])

    def test_divergent_page_not_shared(self, model):
        """A prompt differing inside the first page must share nothing."""
        rng = np.random.default_rng(13)
        a = rng.integers(0, VOCAB, size=32)
        b = a.copy()
        b[3] = (b[3] + 1) % VOCAB
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=16))
        eng.generate([GenerationRequest("a", a, max_tokens=2),
                      GenerationRequest("b", b, max_tokens=2)])
        assert eng.pool.prefill_pages_hit == 0

    @pytest.mark.parametrize("name", list(CACHE_FACTORIES))
    def test_cow_fork_is_a_true_copy(self, name):
        """After a fork, each side's appends never perturb the other."""
        factory = CACHE_FACTORIES[name]
        pool = BlockPool(n_layers=1, block_tokens=16, num_blocks=16)
        lease = pool.acquire(factory)
        cache = lease.caches[0]
        drive(cache, np.random.default_rng(14), seq=20, extra=4)  # mid-page
        fork = lease.fork()
        snap_k = np.array(gathered(cache.keys()))
        snap_v = np.array(gathered(cache.values()))
        rng_a, rng_b = np.random.default_rng(15), np.random.default_rng(16)
        # Diverge: different streams, enough to close V windows post-fork.
        for _ in range(20):
            fork.caches[0].append(rng_b.normal(size=(2, 16)) * 2.0,
                                  rng_b.normal(size=(2, 16)) * 2.0)
        assert pool.cow_copies >= 1               # shared mid-page was cloned
        assert np.array_equal(gathered(cache.keys()), snap_k)
        assert np.array_equal(gathered(cache.values()), snap_v)
        for _ in range(20):
            cache.append(rng_a.normal(size=(2, 16)),
                         rng_a.normal(size=(2, 16)))
        # Each side now equals a standalone cache fed the same stream.
        solo_a, solo_b = factory(), factory()
        drive(solo_a, np.random.default_rng(14), seq=20, extra=4)
        drive(solo_b, np.random.default_rng(14), seq=20, extra=4)
        rng_a2, rng_b2 = np.random.default_rng(15), np.random.default_rng(16)
        for _ in range(20):
            solo_a.append(rng_a2.normal(size=(2, 16)),
                          rng_a2.normal(size=(2, 16)))
            solo_b.append(rng_b2.normal(size=(2, 16)) * 2.0,
                          rng_b2.normal(size=(2, 16)) * 2.0)
        assert np.array_equal(gathered(cache.keys()), solo_a.keys())
        assert np.array_equal(gathered(cache.values()), solo_a.values())
        assert np.array_equal(gathered(fork.caches[0].keys()), solo_b.keys())
        assert np.array_equal(gathered(fork.caches[0].values()), solo_b.values())
        fork.release()
        lease.release()
        assert pool.blocks_in_use == 0

    def test_pool_exhaustion_raises(self):
        pool = BlockPool(n_layers=1, block_tokens=8, num_blocks=2,
                         enable_prefix_cache=False)
        lease = pool.acquire(FP16KVCache)
        cache = lease.caches[0]
        rng = np.random.default_rng(17)
        drive(cache, rng, seq=16, extra=0)        # both blocks
        with pytest.raises(PoolExhausted):
            cache.append(rng.normal(size=(2, 16)), rng.normal(size=(2, 16)))


# ======================================================================
# Engine-level equivalence and block-aware scheduling
# ======================================================================
class TestPagedEngine:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_paged_engine_equals_arena_engine(self, model, cache_name):
        """The acceptance criterion: token-for-token identical decode."""
        factory = CACHE_FACTORIES[cache_name]
        ps = prompts(6, seed=18)
        reqs = lambda: [GenerationRequest(f"r{i}", p, max_tokens=8)
                        for i, p in enumerate(ps)]
        arena = GenerationEngine(model, factory, ServeConfig(max_batch_size=3))
        paged = GenerationEngine(model, factory, ServeConfig(
            max_batch_size=3, paged=True, block_tokens=16))
        ra, rp = arena.generate(reqs()), paged.generate(reqs())
        for i in range(len(ps)):
            assert ra[f"r{i}"].tokens == rp[f"r{i}"].tokens

    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_shared_prefix_engine_equals_arena(self, model, cache_name):
        """Prefix sharing changes memory, never tokens."""
        factory = CACHE_FACTORIES[cache_name]
        rng = np.random.default_rng(19)
        system = rng.integers(0, VOCAB, size=32)
        ps = [np.concatenate([system, rng.integers(0, VOCAB, size=int(n))])
              for n in rng.integers(2, 9, size=5)]
        reqs = lambda: [GenerationRequest(f"r{i}", p, max_tokens=6)
                        for i, p in enumerate(ps)]
        arena = GenerationEngine(model, factory, ServeConfig(max_batch_size=4))
        paged = GenerationEngine(model, factory, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        ra, rp = arena.generate(reqs()), paged.generate(reqs())
        for i in range(len(ps)):
            assert ra[f"r{i}"].tokens == rp[f"r{i}"].tokens
        assert paged.pool.prefill_pages_hit >= 2 * (len(ps) - 1)
        assert paged.stats().prefix_hit_tokens >= 32 * (len(ps) - 1)

    def test_opt_arch_paged_equals_arena(self):
        """Learned-position (OPT) models decode identically when paged."""
        cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                          d_ff=64, max_seq=128, arch="opt", seed=6)
        opt = TransformerLM(cfg)
        ps = prompts(4, seed=23)
        reqs = lambda: [GenerationRequest(f"r{i}", p, max_tokens=6)
                        for i, p in enumerate(ps)]
        arena = GenerationEngine(opt, FP16KVCache, ServeConfig(max_batch_size=4))
        paged = GenerationEngine(opt, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        ra, rp = arena.generate(reqs()), paged.generate(reqs())
        for i in range(len(ps)):
            assert ra[f"r{i}"].tokens == rp[f"r{i}"].tokens

    def test_block_aware_admission_waits_for_free_pages(self, model):
        """Admission keys on actually-free blocks, not worst-case tokens."""
        ps = prompts(2, seed=20, lo=4, hi=5)      # 1 page each at bt=8
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=8, num_blocks=1,
            enable_prefix_cache=False))
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=3))
        eng.step()
        assert eng.scheduler.n_running == 1       # no free page for r1 yet
        assert eng.scheduler.queue_depth == 1
        while eng.has_work():
            eng.step()
        assert eng.stats().requests_completed == 2
        assert eng.pool.blocks_in_use == 0

    def test_oversized_request_rejected_and_counted(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=1, paged=True, block_tokens=8, num_blocks=2))
        with pytest.raises(ValueError, match="num_blocks"):
            eng.submit(GenerationRequest(
                "big", np.zeros(20, dtype=np.int64), max_tokens=10))
        assert eng.stats().requests_rejected == 1

    def test_preemption_recovers_and_completes(self, model):
        """Pool exhaustion mid-decode preempts the youngest back to the
        queue (recompute on resume) instead of failing the batch."""
        rng = np.random.default_rng(21)
        reqs = [GenerationRequest(f"r{i}", rng.integers(0, VOCAB, size=8),
                                  max_tokens=12) for i in range(2)]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=8, num_blocks=4,
            enable_prefix_cache=False))
        res = eng.generate(reqs)
        st = eng.stats()
        assert st.requests_completed == 2
        assert st.preemptions >= 1
        assert all(len(r.tokens) == 12 for r in res.values())
        assert eng.pool.blocks_in_use == 0
        # Deterministic under identical pressure.
        eng2 = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=2, paged=True, block_tokens=8, num_blocks=4,
            enable_prefix_cache=False))
        res2 = eng2.generate([GenerationRequest(f"r{i}", r.prompt, max_tokens=12)
                              for i, r in enumerate(reqs)])
        assert all(res[f"r{i}"].tokens == res2[f"r{i}"].tokens for i in range(2))

    def test_incompatible_block_size_rejected_at_engine_init(self, model):
        with pytest.raises(ValueError, match="multiple of the MANT"):
            GenerationEngine(model, CACHE_FACTORIES["mant4"], ServeConfig(
                paged=True, block_tokens=24))

    def test_append_batch_fusion_preserved_under_paging(self, model):
        """PagedKVCache.append_batch must dispatch the inner fused path."""
        factory = CACHE_FACTORIES["mant4"]
        pool = BlockPool(n_layers=model.config.n_layers, block_tokens=16,
                         num_blocks=32)
        leases = [pool.acquire(factory) for _ in range(3)]
        ps = prompts(3, seed=22)
        toks, poss = [], []
        for lease, p in zip(leases, ps):
            toks.append(int(np.argmax(model.prefill(p, lease.caches))))
            poss.append(len(p))
        batched = model.decode_step_batch(
            toks, [lease.caches for lease in leases], poss)
        for b, p in enumerate(ps):
            solo = [factory() for _ in range(model.config.n_layers)]
            model.prefill(p, solo)
            ref = model.decode_step(toks[b], solo, poss[b])
            assert np.array_equal(batched[b], ref)
        layer0 = [lease.caches[0] for lease in leases]
        assert all(type(c) is PagedKVCache for c in layer0)


# ======================================================================
# Config validation (satellite)
# ======================================================================
class TestServeConfigValidation:
    def test_zero_initial_cache_capacity_rejected(self):
        with pytest.raises(ValueError, match="initial_cache_capacity"):
            ServeConfig(initial_cache_capacity=0)

    @pytest.mark.parametrize("kwargs", [
        {"block_tokens": 0},
        {"num_blocks": 0},
        {"max_queue_len": 0},
    ])
    def test_bad_paging_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_valid_paging_config_accepted(self):
        cfg = ServeConfig(paged=True, block_tokens=16, num_blocks=32,
                          enable_prefix_cache=False, max_queue_len=100)
        assert cfg.paged and cfg.block_tokens == 16
