"""Tests for the serving API v2: pluggable policies, lifecycle, n>1.

Gates, per the PR acceptance criteria:

* priority ordering (strict + FCFS tiebreak) and EDF deadline ordering
  with starvation-free aging;
* policy-aware preemption victim selection;
* cancellation in all three states — queued, mid-chunked-prefill,
  mid-decode — under both storage backends, with storage fully
  released and innocent bystanders' greedy output unchanged;
* n>1 parallel-sampling determinism: per-sample streams derived from
  ``(seed, sample_index)``, invariant to batch composition and to the
  storage backend (paged ``PagedLease.fork`` vs arena prefill replay);
* the v2 config surface (presets, ``scheduler_policy`` validation, the
  deprecated ``repro.serve.scheduler.ServeConfig`` alias), submit-time
  request validation, ``RequestHandle`` and the new ``EngineStats``
  fields.
"""

import functools
import itertools

import numpy as np
import pytest

from serve_testlib import assert_storage_baseline

from repro.model.transformer import ModelConfig, TransformerLM
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import (
    FINISH_CANCELLED,
    DeadlinePolicy,
    FCFSPolicy,
    GenerationEngine,
    GenerationRequest,
    PriorityPolicy,
    RequestHandle,
    SamplingParams,
    ServeConfig,
    get_policy,
)

VOCAB = 64

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=16),
    "mant4": functools.partial(MantKVCache, group_size=16, window=16),
}


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(vocab_size=VOCAB, d_model=32, n_heads=2, n_layers=2,
                      d_ff=64, max_seq=160, seed=5)
    return TransformerLM(cfg)


def prompts(n, seed=0, lo=3, hi=12):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=int(rng.integers(lo, hi))) for _ in range(n)]


def single_stream(model, cache_factory, prompt, n_tokens):
    caches = [cache_factory() for _ in range(model.config.n_layers)]
    logits = model.prefill(prompt, caches)
    out, pos, token = [], len(prompt), int(np.argmax(logits))
    for _ in range(n_tokens):
        out.append(token)
        logits = model.decode_step(token, caches, pos)
        token = int(np.argmax(logits))
        pos += 1
    return out


def fake_clock(step_s=0.001):
    counter = itertools.count()
    return lambda: next(counter) * step_s


def first_token_order(engine):
    """Request ids in the order their first token arrived."""
    order = []
    while engine.has_work():
        for ev in engine.step():
            if ev.token is not None and ev.request_id not in order:
                order.append(ev.request_id)
    return order


# ======================================================================
# Config surface
# ======================================================================
class TestServeConfigV2:
    def test_presets(self):
        arena = ServeConfig.arena(max_batch_size=4)
        assert arena.paged is False and arena.max_batch_size == 4
        paged = ServeConfig.paged(block_tokens=16)
        assert paged.paged is True and paged.block_tokens == 16
        chunked = ServeConfig.chunked()
        assert chunked.paged is True
        assert chunked.prefill_chunk_tokens == chunked.block_tokens
        assert chunked.max_tokens_per_tick == 2 * chunked.prefill_chunk_tokens

    def test_preset_overrides_compose(self):
        cfg = ServeConfig.chunked(block_tokens=64, scheduler_policy="priority")
        assert cfg.prefill_chunk_tokens == 64
        assert cfg.scheduler_policy == "priority"

    def test_with_policy(self):
        cfg = ServeConfig.paged().with_policy("deadline")
        assert cfg.scheduler_policy == "deadline" and cfg.paged is True

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="scheduler_policy"):
            ServeConfig(scheduler_policy="sjf")
        with pytest.raises(ValueError, match="scheduler_policy"):
            get_policy("sjf")

    def test_field_still_reads_through_preset_name(self):
        # The classmethod and the dataclass field share the name 'paged';
        # instances must read the field, the class the preset.
        assert ServeConfig().paged is False
        assert callable(ServeConfig.paged)

    def test_scheduler_reexport_deprecated(self):
        import repro.serve.scheduler as sched
        with pytest.warns(DeprecationWarning, match="repro.serve.config"):
            cfg_cls = sched.ServeConfig
        assert cfg_cls is ServeConfig

    def test_consolidated_validation_still_rejects(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="max_tokens_per_tick"):
            ServeConfig(max_tokens_per_tick=32)


# ======================================================================
# Request validation (at submit, never mid-tick)
# ======================================================================
class TestRequestValidation:
    def test_zero_max_tokens_rejected(self):
        with pytest.raises(ValueError, match="max_tokens"):
            GenerationRequest("r", np.arange(1, 5), max_tokens=0)

    def test_negative_stop_token_rejected(self):
        with pytest.raises(ValueError, match="negative stop tokens"):
            GenerationRequest("r", np.arange(1, 5), stop_tokens=[3, -1])

    def test_duplicate_stop_tokens_rejected(self):
        with pytest.raises(ValueError, match="duplicate stop tokens"):
            GenerationRequest("r", np.arange(1, 5), stop_tokens=[3, 3])

    def test_n_below_one_rejected(self):
        with pytest.raises(ValueError, match="n must be >= 1"):
            GenerationRequest("r", np.arange(1, 5), n=0)

    def test_nonpositive_deadline_rejected(self):
        for bad in (0.0, -1.5):
            with pytest.raises(ValueError, match="deadline_s"):
                GenerationRequest("r", np.arange(1, 5), deadline_s=bad)

    def test_n_over_batch_lanes_rejected_at_submit(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        with pytest.raises(ValueError, match="parallel samples"):
            eng.submit(GenerationRequest("r", np.arange(1, 5), n=3))
        assert eng.stats().requests_rejected == 1


# ======================================================================
# Priority policy
# ======================================================================
class TestPriorityPolicy:
    def test_high_priority_jumps_queue(self, model):
        ps = prompts(4, seed=1)
        cfg = ServeConfig(max_batch_size=1, scheduler_policy="priority")
        eng = GenerationEngine(model, FP16KVCache, cfg)
        for i, p in enumerate(ps[:3]):
            eng.submit(GenerationRequest(f"low-{i}", p, max_tokens=4, priority=0))
        eng.submit(GenerationRequest("high", ps[3], max_tokens=4, priority=5))
        order = first_token_order(eng)
        assert order[0] == "high"
        # FCFS tiebreak among the equals.
        assert order[1:] == ["low-0", "low-1", "low-2"]

    def test_fcfs_tiebreak_at_equal_priority(self, model):
        cfg = ServeConfig(max_batch_size=1, scheduler_policy="priority")
        eng = GenerationEngine(model, FP16KVCache, cfg)
        for i, p in enumerate(prompts(3, seed=2)):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=3, priority=7))
        assert first_token_order(eng) == ["r0", "r1", "r2"]

    def test_priority_output_matches_single_stream(self, model):
        """The policy reorders *scheduling*, never the tokens."""
        ps = prompts(4, seed=3)
        cfg = ServeConfig(max_batch_size=2, scheduler_policy="priority")
        eng = GenerationEngine(model, FP16KVCache, cfg)
        reqs = [GenerationRequest(f"r{i}", p, max_tokens=6, priority=i % 3)
                for i, p in enumerate(ps)]
        results = eng.generate(reqs)
        for i, p in enumerate(ps):
            assert results[f"r{i}"].tokens == single_stream(model, FP16KVCache, p, 6)

    def test_preemption_victim_is_lowest_priority(self, model):
        """Pool exhaustion evicts background work, not the urgent request.

        The low-priority request is admitted *first* (it is oldest), so
        youngest-first FCFS would evict the high-priority one; the
        priority policy must pick the low-priority victim instead.
        """
        rng = np.random.default_rng(11)
        cfg = ServeConfig(max_batch_size=2, paged=True, block_tokens=8,
                          num_blocks=4, enable_prefix_cache=False,
                          scheduler_policy="priority")
        eng = GenerationEngine(model, FP16KVCache, cfg)
        eng.submit(GenerationRequest("bg", rng.integers(0, VOCAB, size=8),
                                     max_tokens=12, priority=0))
        eng.submit(GenerationRequest("urgent", rng.integers(0, VOCAB, size=8),
                                     max_tokens=12, priority=9))
        finish_order = []
        while eng.has_work():
            for ev in eng.step():
                if ev.finished:
                    finish_order.append(ev.request_id)
        st = eng.stats()
        assert st.preemptions >= 1
        assert finish_order[0] == "urgent"       # never the preemption victim
        assert len(eng.result("bg").tokens) == 12   # victim still completes
        assert eng.pool.blocks_in_use == 0

    def test_fcfs_ignores_priority_field(self, model):
        ps = prompts(2, seed=4)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=1))
        eng.submit(GenerationRequest("first", ps[0], max_tokens=3, priority=0))
        eng.submit(GenerationRequest("vip", ps[1], max_tokens=3, priority=99))
        assert first_token_order(eng) == ["first", "vip"]


# ======================================================================
# Deadline policy (EDF + aging)
# ======================================================================
class TestDeadlinePolicy:
    def test_edf_orders_by_deadline(self, model):
        ps = prompts(3, seed=5)
        cfg = ServeConfig(max_batch_size=1, scheduler_policy="deadline")
        eng = GenerationEngine(model, FP16KVCache, cfg, clock=fake_clock())
        eng.submit(GenerationRequest("lax", ps[0], max_tokens=3, deadline_s=10.0))
        eng.submit(GenerationRequest("tight", ps[1], max_tokens=3, deadline_s=1.0))
        eng.submit(GenerationRequest("none", ps[2], max_tokens=3))
        # tight (t+1) < lax (t+10) < no-deadline (t+aging cap 30)
        assert first_token_order(eng) == ["tight", "lax", "none"]

    def test_aging_cap_prevents_starvation(self, model):
        """An old deadline-less request outranks much later arrivals.

        With the default 30 s cap the late tight-deadline request would
        win; with a small cap, the early request's effective deadline
        (submit + cap) comes first once the late one arrives >cap later.
        """
        ps = prompts(2, seed=6)
        clock = fake_clock(step_s=1.0)       # every clock read is 1 s apart
        cfg = ServeConfig(max_batch_size=1, scheduler_policy="deadline")
        eng = GenerationEngine(model, FP16KVCache, cfg, clock=clock,
                               policy=DeadlinePolicy(aging_cap_s=0.5))
        eng.submit(GenerationRequest("old", ps[0], max_tokens=3))
        eng.submit(GenerationRequest("late-tight", ps[1], max_tokens=3,
                                     deadline_s=0.25))
        # old: submit t0 + cap 0.5; late-tight: submit t1 + 0.25 = t1+0.25
        # > t0+0.5 since the clock advanced >= 1 s between submissions.
        assert first_token_order(eng) == ["old", "late-tight"]

    def test_deadline_output_matches_single_stream(self, model):
        ps = prompts(4, seed=7)
        cfg = ServeConfig(max_batch_size=2, scheduler_policy="deadline")
        eng = GenerationEngine(model, FP16KVCache, cfg)
        reqs = [GenerationRequest(f"r{i}", p, max_tokens=6,
                                  deadline_s=float(1 + i))
                for i, p in enumerate(ps)]
        results = eng.generate(reqs)
        for i, p in enumerate(ps):
            assert results[f"r{i}"].tokens == single_stream(model, FP16KVCache, p, 6)

    def test_bad_aging_cap_rejected(self):
        with pytest.raises(ValueError, match="aging_cap_s"):
            DeadlinePolicy(aging_cap_s=0.0)


# ======================================================================
# FCFS is bit-for-bit the pre-policy engine
# ======================================================================
class TestFCFSDefault:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_default_policy_is_fcfs_and_exact(self, model, cache_name):
        factory = CACHE_FACTORIES[cache_name]
        ps = prompts(5, seed=8)
        eng = GenerationEngine(model, factory, ServeConfig(max_batch_size=2))
        assert isinstance(eng.scheduler.policy, FCFSPolicy)
        results = eng.generate(
            [GenerationRequest(f"r{i}", p, max_tokens=6) for i, p in enumerate(ps)]
        )
        for i, p in enumerate(ps):
            assert results[f"r{i}"].tokens == single_stream(model, factory, p, 6)

    def test_explicit_policy_instance_overrides_config(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(),
                               policy=PriorityPolicy())
        assert eng.scheduler.policy.name == "priority"
        assert eng.stats().scheduler_policy == "priority"


# ======================================================================
# Cancellation lifecycle
# ======================================================================
BACKEND_CONFIGS = {
    "arena": lambda: ServeConfig(max_batch_size=2),
    "paged": lambda: ServeConfig(max_batch_size=2, paged=True, block_tokens=16),
}


class TestCancellation:
    @pytest.mark.parametrize("backend", list(BACKEND_CONFIGS))
    def test_cancel_while_queued(self, model, backend):
        ps = prompts(3, seed=9)
        eng = GenerationEngine(model, FP16KVCache, BACKEND_CONFIGS[backend]())
        events = []
        handles = [
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=4),
                       on_token=events.append)
            for i, p in enumerate(ps)
        ]
        eng.step()                        # r0, r1 running; r2 queued
        assert eng.scheduler.queue_depth == 1
        assert handles[2].cancel() is True
        assert eng.scheduler.queue_depth == 0
        res = eng.result("r2")
        assert res.finish_reason == FINISH_CANCELLED and res.tokens == []
        cancel_events = [e for e in events
                         if e.request_id == "r2" and e.finished]
        assert cancel_events and cancel_events[0].finish_reason == FINISH_CANCELLED
        # Bystanders unaffected, storage clean after drain.
        eng.generate()
        for i in (0, 1):
            assert eng.result(f"r{i}").tokens == single_stream(
                model, FP16KVCache, ps[i], 4)
        assert_storage_baseline(eng)
        assert eng.stats().requests_cancelled == 1

    @pytest.mark.parametrize("backend", list(BACKEND_CONFIGS))
    def test_cancel_mid_decode_releases_storage(self, model, backend):
        ps = prompts(2, seed=10)
        eng = GenerationEngine(model, FP16KVCache, BACKEND_CONFIGS[backend]())
        for i, p in enumerate(ps):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=10))
        for _ in range(3):
            eng.step()                   # both mid-decode
        assert eng.cancel("r1") is True
        # Storage released immediately (cancel outside a tick).
        if eng.pool is not None:
            held = len(eng.scheduler.running[0].lease.table.blocks)
            assert eng.pool.blocks_in_use == held
        else:
            assert eng.arena.slots_in_use == 1
        res = eng.result("r1")
        assert res.finish_reason == FINISH_CANCELLED
        assert 0 < len(res.tokens) < 10   # stopped mid-flight
        eng.generate()
        assert eng.result("r0").tokens == single_stream(
            model, FP16KVCache, ps[0], 10)
        assert eng.cancel("r1") is False   # already finished

    @pytest.mark.parametrize("backend", list(BACKEND_CONFIGS))
    def test_cancel_mid_chunked_prefill(self, model, backend):
        cfg = BACKEND_CONFIGS[backend]()
        cfg = ServeConfig(
            max_batch_size=2, paged=cfg.paged, block_tokens=16,
            prefill_chunk_tokens=16, max_tokens_per_tick=16,
        )
        rng = np.random.default_rng(12)
        long_prompt = rng.integers(0, VOCAB, size=80)
        short = rng.integers(0, VOCAB, size=8)
        eng = GenerationEngine(model, FP16KVCache, cfg)
        eng.submit(GenerationRequest("long", long_prompt, max_tokens=4))
        eng.submit(GenerationRequest("short", short, max_tokens=6))
        eng.step()                       # one 16-token chunk of 80 done
        (victim,) = [s for s in eng.scheduler.running
                     if s.request.request_id == "long"]
        assert victim.cursor is not None and not victim.cursor.complete
        assert eng.cancel("long") is True
        res = eng.result("long")
        assert res.finish_reason == FINISH_CANCELLED and res.tokens == []
        eng.generate()
        assert eng.result("short").tokens == single_stream(
            model, FP16KVCache, short, 6)
        assert_storage_baseline(eng)

    def test_cancel_unknown_or_finished_returns_false(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig())
        assert eng.cancel("ghost") is False
        h = eng.submit(GenerationRequest("r", prompts(1, seed=13)[0], max_tokens=2))
        eng.generate()
        assert h.cancel() is False
        assert eng.stats().requests_cancelled == 0

    def test_cancel_from_on_token_callback(self, model):
        """Reentrant cancel mid-tick defers release to the tick's end."""
        ps = prompts(2, seed=14)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))

        def killer(event):
            if event.index == 2:
                eng.cancel("victim")

        eng.submit(GenerationRequest("victim", ps[0], max_tokens=10),
                   on_token=killer)
        eng.submit(GenerationRequest("other", ps[1], max_tokens=10))
        eng.generate()
        assert eng.result("victim").finish_reason == FINISH_CANCELLED
        assert eng.result("other").tokens == single_stream(
            model, FP16KVCache, ps[1], 10)
        assert eng.arena.slots_in_use == 0

    def test_cancel_twice_from_callback_is_idempotent(self, model):
        """A reentrant double-cancel must count (and report) once."""
        eng = GenerationEngine(model, FP16KVCache, ServeConfig())
        outcomes = []

        def killer(event):
            if event.index == 1:
                outcomes.append(eng.cancel("r"))
                outcomes.append(eng.cancel("r"))

        eng.submit(GenerationRequest("r", prompts(1, seed=40)[0], max_tokens=8),
                   on_token=killer)
        eng.generate()
        assert outcomes == [True, False]
        assert eng.stats().requests_cancelled == 1
        assert eng.result("r").finish_reason == FINISH_CANCELLED

    def test_cancel_on_first_token_of_n_request_spawns_no_siblings(self, model):
        """Cancelling from sample 0's first-token callback stops the
        whole request before any sibling lease is forked."""
        p = prompts(1, seed=41, lo=8, hi=10)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        eng.submit(GenerationRequest("r", p, max_tokens=8, n=3),
                   on_token=lambda ev: eng.cancel("r"))
        eng.generate()
        res = eng.result("r")
        assert res.finish_reason == FINISH_CANCELLED
        assert res.n_samples == 1            # siblings never existed
        assert eng.pool.forks == 0
        assert eng.pool.blocks_available == eng.pool.num_blocks
        assert not eng.has_work()

    def test_cancelled_mid_flight_counts_and_queue_depth_in_stats(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=1))
        for i, p in enumerate(prompts(3, seed=15)):
            eng.submit(GenerationRequest(f"r{i}", p, max_tokens=4))
        eng.step()
        st = eng.stats()
        assert st.requests_queued == 2      # current queue depth
        eng.cancel("r2")
        eng.generate()
        st = eng.stats()
        assert st.requests_cancelled == 1
        assert st.requests_completed == 2   # cancelled not counted here


# ======================================================================
# RequestHandle
# ======================================================================
class TestRequestHandle:
    def test_handle_is_the_request_id(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig())
        h = eng.submit(GenerationRequest("req-1", prompts(1)[0], max_tokens=2))
        assert isinstance(h, RequestHandle) and isinstance(h, str)
        assert h == "req-1" and h.request_id == "req-1"
        assert {h: 1}["req-1"] == 1        # usable as a plain id

    def test_result_drives_engine(self, model):
        p = prompts(1, seed=16)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig())
        h = eng.submit(GenerationRequest("r", p, max_tokens=5))
        assert not h.done
        res = h.result()
        assert h.done and res.tokens == single_stream(model, FP16KVCache, p, 5)

    def test_stream_yields_only_own_events(self, model):
        ps = prompts(2, seed=17)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=2))
        eng.submit(GenerationRequest("other", ps[0], max_tokens=4))
        h = eng.submit(GenerationRequest("mine", ps[1], max_tokens=4))
        tokens = [ev.token for ev in h.stream() if ev.token is not None]
        assert tokens == single_stream(model, FP16KVCache, ps[1], 4)


# ======================================================================
# n > 1 parallel sampling
# ======================================================================
class TestParallelSampling:
    @pytest.mark.parametrize("cache_name", list(CACHE_FACTORIES))
    def test_greedy_samples_all_match_single_stream_paged(self, model, cache_name):
        factory = CACHE_FACTORIES[cache_name]
        p = prompts(1, seed=18, lo=8, hi=12)[0]
        eng = GenerationEngine(model, factory, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        res = eng.generate([GenerationRequest("r", p, max_tokens=8, n=3)])["r"]
        ref = single_stream(model, factory, p, 8)
        assert res.n_samples == 3
        for s in res.samples:
            assert s.tokens == ref
        assert res.tokens is res.samples[0].tokens    # alias, not a copy
        assert eng.pool.forks == 2
        assert eng.pool.blocks_in_use == 0            # forks fully released

    def test_fork_prefills_once(self, model):
        p = prompts(1, seed=19, lo=10, hi=12)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        eng.generate([GenerationRequest("r", p, max_tokens=4, n=4)])
        assert eng.stats().prefill_tokens == p.size   # shared prefill
        # Arena fallback replays per extra sample.
        eng2 = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=4))
        eng2.generate([GenerationRequest("r", p, max_tokens=4, n=4)])
        assert eng2.stats().prefill_tokens == 4 * p.size

    def test_seeded_samples_distinct_and_deterministic(self, model):
        p = prompts(1, seed=20, lo=10, hi=12)[0]
        sp = SamplingParams(temperature=0.9, seed=123)

        def run(cfg, extra=()):
            eng = GenerationEngine(model, FP16KVCache, cfg)
            reqs = [GenerationRequest("r", p, max_tokens=8, sampling=sp, n=3)]
            reqs += list(extra)
            return eng.generate(reqs)["r"]

        paged = ServeConfig(max_batch_size=6, paged=True, block_tokens=16)
        alone = run(paged)
        streams = [s.tokens for s in alone.samples]
        assert len({tuple(t) for t in streams}) > 1   # samples truly differ

        # Invariant to batch composition ...
        others = [GenerationRequest(f"o{i}", q, max_tokens=8)
                  for i, q in enumerate(prompts(2, seed=21))]
        busy = run(paged, extra=others)
        assert [s.tokens for s in busy.samples] == streams

        # ... and to the storage backend (arena replays the prefill).
        arena = run(ServeConfig(max_batch_size=6))
        assert [s.tokens for s in arena.samples] == streams

    def test_sample0_identical_to_n1_run(self, model):
        p = prompts(1, seed=22, lo=10, hi=12)[0]
        sp = SamplingParams(temperature=0.7, seed=9)
        cfg = ServeConfig(max_batch_size=4, paged=True, block_tokens=16)
        eng1 = GenerationEngine(model, FP16KVCache, cfg)
        solo = eng1.generate([GenerationRequest("r", p, max_tokens=8,
                                                sampling=sp)])["r"]
        eng3 = GenerationEngine(model, FP16KVCache, cfg)
        multi = eng3.generate([GenerationRequest("r", p, max_tokens=8,
                                                 sampling=sp, n=3)])["r"]
        assert multi.samples[0].tokens == solo.tokens

    def test_events_carry_sample_index(self, model):
        p = prompts(1, seed=23, lo=8, hi=10)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        seen = set()
        eng.submit(GenerationRequest("r", p, max_tokens=3, n=3),
                   on_token=lambda ev: seen.add(ev.sample))
        eng.generate()
        assert seen == {0, 1, 2}

    def test_n_reserves_lanes(self, model):
        """A second request must wait until the family frees lanes."""
        ps = prompts(2, seed=24, lo=8, hi=10)
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=3, paged=True, block_tokens=16))
        eng.submit(GenerationRequest("fam", ps[0], max_tokens=6, n=3))
        eng.submit(GenerationRequest("solo", ps[1], max_tokens=6))
        eng.step()
        # All three lanes are spoken for by the family.
        assert eng.scheduler.queue_depth == 1
        eng.generate()
        assert eng.result("solo").tokens == single_stream(
            model, FP16KVCache, ps[1], 6)

    def test_cancel_cancels_every_sample(self, model):
        p = prompts(1, seed=25, lo=8, hi=10)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16))
        h = eng.submit(GenerationRequest("r", p, max_tokens=12, n=3))
        for _ in range(3):
            eng.step()
        assert h.cancel() is True
        res = eng.result("r")
        assert res.finish_reason == FINISH_CANCELLED
        assert all(s.finish_reason == FINISH_CANCELLED for s in res.samples)
        assert eng.pool.blocks_available == eng.pool.num_blocks
        assert not eng.has_work()

    def test_n_request_fits_small_pool_via_cow_sharing(self, model):
        """Submit-time feasibility is per sample: forked samples share
        prompt pages, so n x the full footprint must NOT be required."""
        rng = np.random.default_rng(42)
        p = rng.integers(0, VOCAB, size=64)     # 4 pages of 16
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(
            max_batch_size=4, paged=True, block_tokens=16, num_blocks=10,
            enable_prefix_cache=False))
        # Old n-times-footprint check: 4 * ceil(72/16) = 20 > 10 pages.
        res = eng.generate([GenerationRequest("r", p, max_tokens=8, n=4)])["r"]
        ref = single_stream(model, FP16KVCache, p, 8)
        assert [s.tokens for s in res.samples] == [ref] * 4
        assert eng.pool.blocks_in_use == 0

    def test_arena_n_greedy_matches_single_stream(self, model):
        p = prompts(1, seed=26, lo=8, hi=12)[0]
        eng = GenerationEngine(model, FP16KVCache, ServeConfig(max_batch_size=4))
        res = eng.generate([GenerationRequest("r", p, max_tokens=8, n=3)])["r"]
        ref = single_stream(model, FP16KVCache, p, 8)
        assert [s.tokens for s in res.samples] == [ref, ref, ref]
        assert eng.arena.slots_in_use == 0

    def test_chunked_n_fork_after_chunked_prefill(self, model):
        """n>1 composes with the mixed tick: fork fires on final chunk."""
        rng = np.random.default_rng(27)
        p = rng.integers(0, VOCAB, size=48)
        cfg = ServeConfig(max_batch_size=4, paged=True, block_tokens=16,
                          prefill_chunk_tokens=16, max_tokens_per_tick=32)
        eng = GenerationEngine(model, FP16KVCache, cfg)
        res = eng.generate([GenerationRequest("r", p, max_tokens=6, n=3)])["r"]
        ref = single_stream(model, FP16KVCache, p, 6)
        assert [s.tokens for s in res.samples] == [ref, ref, ref]
        assert eng.pool.forks == 2


# ======================================================================
# EngineStats v2
# ======================================================================
class TestEngineStatsV2:
    def test_policy_name_and_counters_exposed(self, model):
        eng = GenerationEngine(model, FP16KVCache,
                               ServeConfig(scheduler_policy="deadline"))
        st = eng.stats()
        assert st.scheduler_policy == "deadline"
        assert st.requests_cancelled == 0 and st.requests_queued == 0

    def test_summary_renders_nan_as_none_before_tokens(self, model):
        eng = GenerationEngine(model, FP16KVCache, ServeConfig())
        s = eng.stats().summary()
        assert s["ttft_p50_s"] is None and s["ttft_p95_s"] is None
        assert s["inter_token_p50_s"] is None and s["inter_token_p95_s"] is None
        assert s["scheduler_policy"] == "fcfs"
        eng.generate([GenerationRequest("r", prompts(1, seed=28)[0],
                                        max_tokens=4)])
        s = eng.stats().summary()
        assert s["ttft_p50_s"] is not None
        assert s["inter_token_p95_s"] is not None
