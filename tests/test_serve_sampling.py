"""Tests for the shared token sampler (repro.serve.sampling)."""

import numpy as np
import pytest

from repro.serve.sampling import GREEDY, Sampler, SamplingParams, greedy_sample


class TestGreedy:
    def test_argmax(self):
        logits = np.array([0.1, 3.0, -1.0, 2.9])
        assert greedy_sample(logits) == 1
        assert Sampler().sample(logits) == 1

    def test_default_params_are_greedy(self):
        assert GREEDY.is_greedy
        assert SamplingParams().is_greedy

    def test_tie_breaks_to_lowest_id(self):
        assert greedy_sample(np.array([2.0, 2.0, 1.0])) == 0


class TestTemperature:
    def test_seeded_stream_reproducible(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(20, 64))
        a = Sampler(SamplingParams(temperature=0.8, seed=7))
        b = Sampler(SamplingParams(temperature=0.8, seed=7))
        assert [a.sample(l) for l in logits] == [b.sample(l) for l in logits]

    def test_different_seeds_diverge(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(50, 64))
        a = Sampler(SamplingParams(temperature=2.0, seed=1))
        b = Sampler(SamplingParams(temperature=2.0, seed=2))
        assert [a.sample(l) for l in logits] != [b.sample(l) for l in logits]

    def test_low_temperature_concentrates(self):
        logits = np.zeros(16)
        logits[5] = 10.0
        s = Sampler(SamplingParams(temperature=0.1, seed=0))
        assert all(s.sample(logits) == 5 for _ in range(20))

    def test_samples_follow_distribution(self):
        # Two-token distribution: softmax([0, log 3]) = [0.25, 0.75].
        logits = np.array([0.0, np.log(3.0)])
        s = Sampler(SamplingParams(temperature=1.0, seed=3))
        draws = [s.sample(logits) for _ in range(2000)]
        assert 0.70 < np.mean(draws) < 0.80


class TestTopK:
    def test_truncates_to_top_k(self):
        logits = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        s = Sampler(SamplingParams(temperature=5.0, top_k=2, seed=0))
        draws = {s.sample(logits) for _ in range(200)}
        assert draws <= {3, 4}

    def test_top_k_larger_than_vocab_is_noop(self):
        logits = np.array([0.0, 1.0])
        s = Sampler(SamplingParams(temperature=1.0, top_k=100, seed=0))
        assert {s.sample(logits) for _ in range(100)} == {0, 1}


class TestValidation:
    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-0.1)

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError):
            SamplingParams(top_k=-1)
