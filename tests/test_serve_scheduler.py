"""Tests for FCFS + token/block-budget admission (repro.serve.scheduler)."""

import numpy as np
import pytest

from repro.serve.request import GenerationRequest
from repro.serve.scheduler import QueueFullError, Scheduler, ServeConfig


class _Seq:
    """Minimal stand-in for the engine's sequence state."""

    def __init__(self, rid, prompt_len=8, max_tokens=8):
        self.request = GenerationRequest(
            rid, np.arange(1, prompt_len + 1), max_tokens=max_tokens
        )

    @property
    def prefill_len(self):
        return int(self.request.prompt.size)


def ids(seqs):
    return [s.request.request_id for s in seqs]


class TestBatchCap:
    def test_admits_up_to_max_batch(self):
        sch = Scheduler(ServeConfig(max_batch_size=2))
        for i in range(4):
            sch.submit(_Seq(f"r{i}"))
        assert ids(sch.admit()) == ["r0", "r1"]
        assert sch.queue_depth == 2 and sch.n_running == 2

    def test_admission_after_release(self):
        sch = Scheduler(ServeConfig(max_batch_size=2))
        for i in range(3):
            sch.submit(_Seq(f"r{i}"))
        admitted = sch.admit()
        assert sch.admit() == []          # full: nothing more admitted
        sch.release(admitted[0])          # one finishes mid-batch
        assert ids(sch.admit()) == ["r2"]
        assert sch.queue_depth == 0 and sch.n_running == 2

    def test_fcfs_order_preserved(self):
        sch = Scheduler(ServeConfig(max_batch_size=1))
        for i in range(3):
            sch.submit(_Seq(f"r{i}"))
        order = []
        while sch.has_work():
            batch = sch.admit()
            order += ids(batch)
            for s in batch:
                sch.release(s)
        assert order == ["r0", "r1", "r2"]


class TestTokenBudget:
    def test_budget_limits_admission(self):
        # Each request's worst case is 8 + 8 = 16 tokens.
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=40))
        for i in range(4):
            sch.submit(_Seq(f"r{i}"))
        assert ids(sch.admit()) == ["r0", "r1"]   # 32 fits, 48 would not
        assert sch.tokens_in_flight == 32

    def test_head_of_line_blocks_smaller_requests(self):
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=40))
        sch.submit(_Seq("big", prompt_len=16, max_tokens=16))    # 32
        sch.submit(_Seq("huge", prompt_len=24, max_tokens=12))   # 36
        sch.submit(_Seq("small", prompt_len=2, max_tokens=2))    # 4, would fit
        assert ids(sch.admit()) == ["big"]   # "huge" blocks "small" (FCFS)

    def test_oversized_request_rejected_at_submit(self):
        # Queued, it would reach the FCFS head and wedge the queue
        # forever; rejection must happen before it is ever enqueued.
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=10))
        with pytest.raises(ValueError, match="max_tokens_in_flight"):
            sch.submit(_Seq("too-big", prompt_len=16, max_tokens=16))
        assert sch.queue_depth == 0
        sch.submit(_Seq("ok", prompt_len=3, max_tokens=3))
        assert ids(sch.admit()) == ["ok"]   # queue still serviceable

    def test_budget_frees_on_release(self):
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=16))
        sch.submit(_Seq("a"))
        sch.submit(_Seq("b"))
        (a,) = sch.admit()
        assert sch.admit() == []
        sch.release(a)
        assert ids(sch.admit()) == ["b"]


class TestQueueBound:
    def test_queue_full_rejects_at_submit(self):
        sch = Scheduler(ServeConfig(max_batch_size=1, max_queue_len=2))
        sch.submit(_Seq("r0"))
        sch.submit(_Seq("r1"))
        with pytest.raises(QueueFullError, match="max_queue_len"):
            sch.submit(_Seq("r2"))
        assert sch.queue_depth == 2

    def test_admission_frees_queue_space(self):
        sch = Scheduler(ServeConfig(max_batch_size=1, max_queue_len=1))
        sch.submit(_Seq("r0"))
        with pytest.raises(QueueFullError):
            sch.submit(_Seq("r1"))
        sch.admit()
        sch.submit(_Seq("r1"))          # slot freed by admission
        assert sch.queue_depth == 1


class TestBlockAwareAdmission:
    def test_admission_keyed_on_free_blocks(self):
        """With a gauge bound, the head needs its prefill pages free —
        not its worst-case prompt+max_tokens footprint."""
        free = {"n": 1}
        sch = Scheduler(ServeConfig(max_batch_size=8))
        sch.bind_block_gauge(lambda: free["n"], block_tokens=8)
        sch.submit(_Seq("a", prompt_len=8, max_tokens=100))   # 1 page prefill
        sch.submit(_Seq("b", prompt_len=8, max_tokens=100))
        assert sch.admit_one().request.request_id == "a"
        free["n"] = 0                       # a's prefill took the page
        assert sch.admit_one() is None      # b: no free page left
        free["n"] = 1
        assert sch.admit_one().request.request_id == "b"

    def test_requeue_front_preserves_fcfs(self):
        """Preempted sequences re-enter at the queue head, ahead of
        later arrivals; youngest-first preemption restores order."""
        sch = Scheduler(ServeConfig(max_batch_size=4))
        for i in range(3):
            sch.submit(_Seq(f"r{i}"))
        admitted = sch.admit()
        sch.submit(_Seq("late"))
        # Engine preempts youngest-first: r2, then r1.
        sch.requeue_front(admitted[2])
        sch.requeue_front(admitted[1])
        assert sch.n_running == 1
        assert ids(sch.admit()) == ["r1", "r2", "late"]


class TestConfigValidation:
    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_tokens_in_flight=0)

    def test_zero_initial_capacity_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(initial_cache_capacity=0)

    def test_zero_queue_len_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_queue_len=0)
