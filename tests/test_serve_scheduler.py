"""Tests for FCFS + token-budget admission (repro.serve.scheduler)."""

import numpy as np
import pytest

from repro.serve.request import GenerationRequest
from repro.serve.scheduler import Scheduler, ServeConfig


class _Seq:
    """Minimal stand-in for the engine's sequence state."""

    def __init__(self, rid, prompt_len=8, max_tokens=8):
        self.request = GenerationRequest(
            rid, np.arange(1, prompt_len + 1), max_tokens=max_tokens
        )


def ids(seqs):
    return [s.request.request_id for s in seqs]


class TestBatchCap:
    def test_admits_up_to_max_batch(self):
        sch = Scheduler(ServeConfig(max_batch_size=2))
        for i in range(4):
            sch.submit(_Seq(f"r{i}"))
        assert ids(sch.admit()) == ["r0", "r1"]
        assert sch.queue_depth == 2 and sch.n_running == 2

    def test_admission_after_release(self):
        sch = Scheduler(ServeConfig(max_batch_size=2))
        for i in range(3):
            sch.submit(_Seq(f"r{i}"))
        admitted = sch.admit()
        assert sch.admit() == []          # full: nothing more admitted
        sch.release(admitted[0])          # one finishes mid-batch
        assert ids(sch.admit()) == ["r2"]
        assert sch.queue_depth == 0 and sch.n_running == 2

    def test_fcfs_order_preserved(self):
        sch = Scheduler(ServeConfig(max_batch_size=1))
        for i in range(3):
            sch.submit(_Seq(f"r{i}"))
        order = []
        while sch.has_work():
            batch = sch.admit()
            order += ids(batch)
            for s in batch:
                sch.release(s)
        assert order == ["r0", "r1", "r2"]


class TestTokenBudget:
    def test_budget_limits_admission(self):
        # Each request's worst case is 8 + 8 = 16 tokens.
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=40))
        for i in range(4):
            sch.submit(_Seq(f"r{i}"))
        assert ids(sch.admit()) == ["r0", "r1"]   # 32 fits, 48 would not
        assert sch.tokens_in_flight == 32

    def test_head_of_line_blocks_smaller_requests(self):
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=40))
        sch.submit(_Seq("big", prompt_len=16, max_tokens=16))    # 32
        sch.submit(_Seq("huge", prompt_len=24, max_tokens=12))   # 36
        sch.submit(_Seq("small", prompt_len=2, max_tokens=2))    # 4, would fit
        assert ids(sch.admit()) == ["big"]   # "huge" blocks "small" (FCFS)

    def test_oversized_request_rejected_at_submit(self):
        # Queued, it would reach the FCFS head and wedge the queue
        # forever; rejection must happen before it is ever enqueued.
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=10))
        with pytest.raises(ValueError, match="max_tokens_in_flight"):
            sch.submit(_Seq("too-big", prompt_len=16, max_tokens=16))
        assert sch.queue_depth == 0
        sch.submit(_Seq("ok", prompt_len=3, max_tokens=3))
        assert ids(sch.admit()) == ["ok"]   # queue still serviceable

    def test_budget_frees_on_release(self):
        sch = Scheduler(ServeConfig(max_batch_size=8, max_tokens_in_flight=16))
        sch.submit(_Seq("a"))
        sch.submit(_Seq("b"))
        (a,) = sch.admit()
        assert sch.admit() == []
        sch.release(a)
        assert ids(sch.admit()) == ["b"]


class TestConfigValidation:
    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_tokens_in_flight=0)
